"""Chrome trace-event export: view a telemetry trace on a timeline.

:func:`to_chrome_trace` converts a recorded trace into the Chrome
trace-event JSON format, loadable in Perfetto (https://ui.perfetto.dev)
or ``chrome://tracing``.  The mapping:

* each trace *segment* (one simulation run) becomes a process (pid),
* four tracks (tids) per segment: job service, cache churn, staging
  lifecycles, injected faults,
* jobs render as duration ("X") slices spanning until the next arrival,
* admissions / evictions / plans / retries / fail-overs / faults render
  as instant ("i") events carrying their full payload in ``args``,
* staging attempts render as async begin/end ("b"/"e") pairs keyed by
  ``file/attempt`` — a retried file shows stacked failed attempts before
  the completing one,
* ``WindowRolled`` renders as counter ("C") series of the byte-miss and
  request-hit ratios.

Timestamps are microseconds.  Timed (SRM) segments use simulated time
``t * 1e6`` with carry-forward for untimed events between staging events;
untimed segments use the event index as a synthetic 1µs-per-event clock.
Segments are laid end to end and the clock is clamped monotone, so the
export never violates the format's non-decreasing-time expectation even
on a trace whose segments restart ``t`` at zero.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Union

from repro.errors import TelemetryError
from repro.telemetry.events import (
    FaultInjected,
    FileAdmitted,
    FileEvicted,
    JobArrived,
    PlanComputed,
    StageCompleted,
    StageFailedOver,
    StageRetried,
    StageStarted,
    WindowRolled,
)
from repro.telemetry.forensics.tracelog import TraceLog

__all__ = ["to_chrome_trace", "export_chrome", "spans_to_chrome"]

#: track (thread) ids within each segment's process
_TID_JOBS = 1
_TID_CACHE = 2
_TID_STAGING = 3
_TID_FAULTS = 4
_TID_METRICS = 5

_TRACK_NAMES = {
    _TID_JOBS: "jobs",
    _TID_CACHE: "cache",
    _TID_STAGING: "staging",
    _TID_FAULTS: "faults",
    _TID_METRICS: "metrics",
}


def _timestamps(log: TraceLog) -> list[float]:
    """Per-event microsecond timestamps, globally monotone non-decreasing."""
    ts = [0.0] * len(log)
    cursor = 0.0
    for seg in log.segments():
        offset = cursor
        for i in range(seg.start, seg.end):
            event = log.event(i)
            t = getattr(event, "t", None)
            if seg.timed:
                candidate = offset + t * 1e6 if t is not None else cursor
            else:
                candidate = offset + float(i - seg.start)
            cursor = max(cursor, candidate)
            ts[i] = cursor
    return ts


def _base(
    name: str, ph: str, ts: float, pid: int, tid: int, cat: str
) -> dict[str, Any]:
    return {"name": name, "ph": ph, "ts": ts, "pid": pid, "tid": tid, "cat": cat}


def to_chrome_trace(log: TraceLog) -> dict[str, Any]:
    """Convert an indexed trace into a Chrome trace-event JSON object."""
    events: list[dict[str, Any]] = []
    ts = _timestamps(log)
    segments = log.segments()

    for seg in segments:
        pid = seg.index + 1
        flavour = "timed" if seg.timed else "untimed"
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0.0,
                "pid": pid,
                "tid": 0,
                "cat": "__metadata",
                "args": {"name": f"segment {seg.index} ({flavour})"},
            }
        )
        for tid, label in _TRACK_NAMES.items():
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "ts": 0.0,
                    "pid": pid,
                    "tid": tid,
                    "cat": "__metadata",
                    "args": {"name": label},
                }
            )

    # job "X" slices need each arrival's end time: the next arrival in the
    # same segment, or the segment end
    job_end: dict[int, float] = {}
    for seg in segments:
        previous: int | None = None
        for i in range(seg.start, seg.end):
            if isinstance(log.event(i), JobArrived):
                if previous is not None:
                    job_end[previous] = ts[i]
                previous = i
        if previous is not None:
            job_end[previous] = ts[seg.end - 1]

    for seg in segments:
        pid = seg.index + 1
        open_attempt: dict[str, int] = {}
        for i in range(seg.start, seg.end):
            event = log.event(i)
            t_us = ts[i]
            if isinstance(event, JobArrived):
                record = _base(f"job {event.job}", "X", t_us, pid, _TID_JOBS, "job")
                record["dur"] = max(job_end.get(i, t_us) - t_us, 1.0)
                record["args"] = {
                    "request_id": event.request_id,
                    "n_files": event.n_files,
                    "bytes_requested": event.bytes_requested,
                }
                events.append(record)
            elif isinstance(event, PlanComputed):
                record = _base("plan", "i", t_us, pid, _TID_JOBS, "job")
                record["s"] = "t"
                record["args"] = {
                    "policy": event.policy,
                    "loads": event.loads,
                    "prefetches": event.prefetches,
                    "evictions": event.evictions,
                    "hit": event.hit,
                }
                events.append(record)
            elif isinstance(event, FileAdmitted):
                record = _base(
                    f"admit {event.file}", "i", t_us, pid, _TID_CACHE, "cache"
                )
                record["s"] = "t"
                record["args"] = {"bytes": event.bytes, "cause": event.cause}
                events.append(record)
            elif isinstance(event, FileEvicted):
                record = _base(
                    f"evict {event.file}", "i", t_us, pid, _TID_CACHE, "cache"
                )
                record["s"] = "t"
                record["args"] = {
                    "bytes": event.bytes,
                    "policy": event.policy,
                    "detail": event.detail,
                }
                events.append(record)
            elif isinstance(event, StageStarted):
                stale = open_attempt.pop(event.file, None)
                if stale is not None:
                    # an earlier attempt was abandoned without a retry or
                    # completion event (e.g. the job failed and was
                    # requeued) — close it so async pairs stay balanced
                    closer = _base(
                        f"stage {event.file}",
                        "e",
                        t_us,
                        pid,
                        _TID_STAGING,
                        "staging",
                    )
                    closer["id"] = f"{event.file}/{stale}"
                    events.append(closer)
                open_attempt[event.file] = event.attempt
                record = _base(
                    f"stage {event.file}", "b", t_us, pid, _TID_STAGING, "staging"
                )
                record["id"] = f"{event.file}/{event.attempt}"
                record["args"] = {
                    "bytes": event.bytes,
                    "site": event.site,
                    "attempt": event.attempt,
                }
                events.append(record)
            elif isinstance(event, StageRetried):
                attempt = open_attempt.pop(event.file, event.attempt)
                record = _base(
                    f"stage {event.file}", "e", t_us, pid, _TID_STAGING, "staging"
                )
                record["id"] = f"{event.file}/{attempt}"
                events.append(record)
                mark = _base(
                    f"retry {event.file}", "i", t_us, pid, _TID_STAGING, "staging"
                )
                mark["s"] = "t"
                mark["args"] = {"attempt": event.attempt, "delay": event.delay}
                events.append(mark)
            elif isinstance(event, StageFailedOver):
                record = _base(
                    f"failover {event.file}", "i", t_us, pid, _TID_STAGING, "staging"
                )
                record["s"] = "t"
                record["args"] = {
                    "from_site": event.from_site,
                    "to_site": event.to_site,
                }
                events.append(record)
            elif isinstance(event, StageCompleted):
                attempt = open_attempt.pop(event.file, 1)
                record = _base(
                    f"stage {event.file}", "e", t_us, pid, _TID_STAGING, "staging"
                )
                record["id"] = f"{event.file}/{attempt}"
                record["args"] = {"bytes": event.bytes, "site": event.site}
                events.append(record)
            elif isinstance(event, FaultInjected):
                record = _base(
                    f"fault {event.fault}", "i", t_us, pid, _TID_FAULTS, "fault"
                )
                record["s"] = "t"
                record["args"] = {"component": event.component}
                events.append(record)
            elif isinstance(event, WindowRolled):
                for metric in ("byte_miss_ratio", "request_hit_ratio"):
                    record = _base(metric, "C", t_us, pid, _TID_METRICS, "metric")
                    record["args"] = {"value": getattr(event, metric)}
                    events.append(record)

        # attempts still open at segment end (the run stopped mid-stage)
        end_ts = ts[seg.end - 1] if seg.end > seg.start else 0.0
        for file, attempt in sorted(open_attempt.items()):
            closer = _base(f"stage {file}", "e", end_ts, pid, _TID_STAGING, "staging")
            closer["id"] = f"{file}/{attempt}"
            events.append(closer)

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": str(log.path) if log.path else "<memory>",
            "events": len(log),
            "segments": len(segments),
        },
    }


def _emit_span(
    span: dict[str, Any],
    events: list[dict[str, Any]],
    *,
    offset_us: float,
    tid: int,
    bound_us: float,
    args: dict[str, Any] | None = None,
) -> None:
    """Emit one span (and its children) as nested "X" slices.

    ``bound_us`` is the parent's absolute end time: the 0.1µs rounding
    of exported offsets can push a child fractionally past its parent,
    which Chrome renders as a mis-nested flat slice, so children are
    clamped inside it.
    """
    ts = offset_us + float(span.get("start_us", 0.0))
    ts = min(max(ts, offset_us), bound_us)
    dur = min(max(float(span.get("duration_us", 0.0)), 0.0), bound_us - ts)
    record = _base(str(span.get("name", "?")), "X", ts, 1, tid, "span")
    record["dur"] = dur
    if args:
        record["args"] = args
    events.append(record)
    for child in span.get("children", ()):
        _emit_span(child, events, offset_us=ts, tid=tid, bound_us=ts + dur)


def spans_to_chrome(
    requests: "list[dict[str, Any]] | dict[str, Any]",
) -> dict[str, Any]:
    """Convert ``/v1/debug/requests`` span trees into Chrome trace JSON.

    Accepts the endpoint's whole body (the ``requests`` key is used) or
    the request list itself.  Each request becomes a thread whose name
    is its request id, with the span tree rendered as nested duration
    slices; requests are laid end to end on a shared clock since their
    host start times are not exported (offsets are per-request).
    """
    if isinstance(requests, dict):
        requests = requests.get("requests", [])
    if not isinstance(requests, list):
        raise TelemetryError(
            "spans_to_chrome expects a request list or a /v1/debug/requests body"
        )
    events: list[dict[str, Any]] = []
    events.append(
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0.0,
            "pid": 1,
            "tid": 0,
            "cat": "__metadata",
            "args": {"name": "coordinator requests"},
        }
    )
    cursor = 0.0
    for idx, req in enumerate(requests):
        if not isinstance(req, dict) or not isinstance(req.get("spans"), dict):
            raise TelemetryError(
                f"request entry {idx} has no span tree (expected 'spans' dict)"
            )
        tid = idx + 1
        label = str(req.get("request_id", f"request {idx}"))
        route = req.get("route")
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "ts": 0.0,
                "pid": 1,
                "tid": tid,
                "cat": "__metadata",
                "args": {"name": f"{label} {route}" if route else label},
            }
        )
        root = req["spans"]
        root_dur = max(float(root.get("duration_us", 0.0)), 0.0)
        _emit_span(
            root,
            events,
            offset_us=cursor,
            tid=tid,
            bound_us=cursor + root_dur,
            args={
                "request_id": req.get("request_id"),
                "route": route,
                "client_id": req.get("client_id"),
                "job": req.get("job"),
                "status": req.get("status"),
                "breakdown_ms": req.get("breakdown_ms"),
            },
        )
        # 1µs of slack keeps consecutive requests visually separate
        cursor += root_dur + 1.0
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"requests": len(requests)},
    }


def export_chrome(
    source: Union[TraceLog, str, Path], out_path: str | Path
) -> int:
    """Write a trace's Chrome trace-event JSON to ``out_path``.

    Returns the number of exported trace events.
    """
    log = source if isinstance(source, TraceLog) else TraceLog.load(source)
    doc = to_chrome_trace(log)
    out = Path(out_path)
    try:
        fh = open(out, "w", encoding="utf-8")
    except OSError as exc:
        raise TelemetryError(
            f"cannot write Chrome trace {out}: {exc.strerror or exc}"
        ) from None
    with fh:
        json.dump(doc, fh, separators=(",", ":"), sort_keys=True)
        fh.write("\n")
    return len(doc["traceEvents"])
