"""Cache-state reconstruction and invariant checking ("trace lint").

Replays a recorded event stream — ``FileAdmitted`` / ``FileEvicted`` /
``StageCompleted`` — into a residency timeline, per segment (one segment
per simulation run, split where the job counter restarts).  While
replaying it checks everything a *possible* simulation must satisfy:

* occupancy never exceeds the cache capacity (when one is given);
* no file is admitted twice without an eviction in between, and no
  non-resident file is evicted;
* a file's size never changes within a run;
* every ``PlanComputed`` is satisfied by the admissions and evictions of
  its job window (untimed traces, where admissions follow the plan
  synchronously);
* a plan claiming a request-hit performs no demand load, and vice versa;
* simulated time on staging events never runs backwards;
* sequence numbers increase and ``WindowRolled`` indexes are contiguous
  with ratios in ``[0, 1]``.

The reconstructor streams: it accepts :func:`iter_trace` output directly
and holds only per-segment residency state, so multi-million-event traces
are fine.  The final per-segment residency can be compared byte-for-byte
against a live :class:`~repro.cache.state.CacheState` with
:func:`verify_against_cache` — this differential check is what makes
every recorded run self-verifying (``tests/test_forensics_reconstruct``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Union

from repro.errors import TraceInvariantError
from repro.telemetry.events import (
    FileAdmitted,
    FileEvicted,
    JobArrived,
    PlanComputed,
    StageCompleted,
    TraceEvent,
    WindowRolled,
)
from repro.telemetry.forensics.tracelog import TIMED_EVENT_KINDS, TraceLog, iter_trace

__all__ = [
    "InvariantViolation",
    "SegmentState",
    "ReconstructionReport",
    "reconstruct",
    "verify_against_cache",
]

TraceSource = Union[
    TraceLog,
    str,
    Path,
    Iterable["tuple[int, TraceEvent] | TraceEvent"],
]


@dataclass(frozen=True)
class InvariantViolation:
    """One impossible thing a trace claims happened.

    ``rule`` is a stable machine slug (e.g. ``evict-nonresident``);
    ``seq`` is the sequence number of the event that triggered the check.
    """

    rule: str
    seq: int
    segment: int
    message: str

    def __str__(self) -> str:
        return f"[{self.rule}] seq {self.seq} (segment {self.segment}): {self.message}"


@dataclass
class SegmentState:
    """Reconstructed end state of one simulation run."""

    index: int
    jobs: int = 0
    admissions: int = 0
    evictions: int = 0
    staged: int = 0
    bytes_admitted: int = 0
    bytes_evicted: int = 0
    peak_used: int = 0
    residency: dict[str, int] = field(default_factory=dict)

    @property
    def used(self) -> int:
        return sum(self.residency.values())


@dataclass
class ReconstructionReport:
    """Everything :func:`reconstruct` learned from one trace."""

    segments: list[SegmentState]
    violations: list[InvariantViolation]
    events: int
    capacity: int | None = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def final_residency(self, segment: int = -1) -> dict[str, int]:
        """File → size mapping at the end of ``segment`` (default: last)."""
        return dict(self.segments[segment].residency)

    def raise_if_violations(self) -> None:
        """Raise :class:`~repro.errors.TraceInvariantError` unless clean."""
        if self.violations:
            head = "; ".join(str(v) for v in self.violations[:3])
            more = len(self.violations) - 3
            if more > 0:
                head += f"; ... {more} more"
            raise TraceInvariantError(
                f"trace violates {len(self.violations)} invariant(s): {head}",
                violations=list(self.violations),
            )

    def render(self) -> str:
        lines = [
            f"events: {self.events}  segments: {len(self.segments)}  "
            f"violations: {len(self.violations)}"
        ]
        for seg in self.segments:
            lines.append(
                f"  segment {seg.index}: jobs={seg.jobs} "
                f"admitted={seg.admissions} evicted={seg.evictions} "
                f"staged={seg.staged} final={len(seg.residency)} files / "
                f"{seg.used} bytes (peak {seg.peak_used})"
            )
        for v in self.violations:
            lines.append(f"  VIOLATION {v}")
        return "\n".join(lines)


class _Window:
    """Decision bookkeeping of one open job window."""

    __slots__ = (
        "seq",
        "arrival",
        "plans",
        "demand",
        "prefetch",
        "staged",
        "evicts",
        "has_stage",
    )

    def __init__(self, seq: int, arrival: JobArrived):
        self.seq = seq
        self.arrival = arrival
        self.plans: list[PlanComputed] = []
        self.demand = 0
        self.prefetch = 0
        self.staged = 0
        self.evicts = 0
        self.has_stage = False


class _Reconstructor:
    """Single-pass streaming state machine behind :func:`reconstruct`."""

    def __init__(self, capacity: int | None, split_on_time_reset: bool):
        self.capacity = capacity
        self.split_on_time_reset = split_on_time_reset
        self.segments: list[SegmentState] = []
        self.violations: list[InvariantViolation] = []
        self.events = 0
        self._seg: SegmentState | None = None
        self._clock = 0.0
        self._last_seq: int | None = None
        self._window: _Window | None = None
        self._window_index: int | None = None
        self._seg_has_plan = False

    # -------------------------------------------------------------- #

    def _flag(self, rule: str, seq: int, message: str) -> None:
        segment = self._seg.index if self._seg is not None else 0
        self.violations.append(
            InvariantViolation(rule=rule, seq=seq, segment=segment, message=message)
        )

    def _segment(self) -> SegmentState:
        if self._seg is None:
            self._seg = SegmentState(index=len(self.segments))
            self.segments.append(self._seg)
        return self._seg

    def _new_segment(self) -> None:
        self._close_window()
        self._seg = None
        self._clock = 0.0
        self._window_index = None
        self._seg_has_plan = False
        self._segment()

    def _close_window(self) -> None:
        """Evaluate the plan-satisfiability checks of the open job window.

        Only meaningful for untimed windows: the simulator admits a job's
        files synchronously after the plan, so the window's admissions
        must match it.  Timed (SRM) windows stage asynchronously — the
        per-event residency checks still apply, the per-window ones do
        not.  Windows are also skipped when the segment carries no
        ``PlanComputed`` at all (a policy that was never instrumented).
        """
        w, self._window = self._window, None
        if w is None or w.has_stage or not self._seg_has_plan:
            return
        if self.capacity is not None and w.arrival.bytes_requested > self.capacity:
            if w.plans or w.demand or w.evicts:
                self._flag(
                    "unserviceable-serviced",
                    w.seq,
                    f"job {w.arrival.job} requests "
                    f"{w.arrival.bytes_requested} bytes > capacity "
                    f"{self.capacity} yet has decision events",
                )
            return
        if len(w.plans) > 1:
            self._flag(
                "multiple-plans",
                w.seq,
                f"job {w.arrival.job} has {len(w.plans)} PlanComputed events",
            )
            return
        if not w.plans:
            if w.demand or w.prefetch or w.evicts:
                self._flag(
                    "decision-without-plan",
                    w.seq,
                    f"job {w.arrival.job} admitted {w.demand + w.prefetch} and "
                    f"evicted {w.evicts} files with no PlanComputed",
                )
            return
        plan = w.plans[0]
        if w.demand != plan.loads:
            self._flag(
                "plan-load-mismatch",
                w.seq,
                f"job {w.arrival.job}: plan promised {plan.loads} demand "
                f"loads, trace admitted {w.demand}",
            )
        if w.prefetch > plan.prefetches:
            self._flag(
                "plan-prefetch-overrun",
                w.seq,
                f"job {w.arrival.job}: plan allowed {plan.prefetches} "
                f"prefetches, trace admitted {w.prefetch}",
            )
        if w.evicts != plan.evictions:
            self._flag(
                "plan-evict-mismatch",
                w.seq,
                f"job {w.arrival.job}: plan evicted {plan.evictions} files, "
                f"trace shows {w.evicts} FileEvicted events",
            )
        if plan.hit and w.demand:
            self._flag(
                "hit-with-demand-load",
                w.seq,
                f"job {w.arrival.job}: plan claims a request-hit but "
                f"{w.demand} demand loads follow",
            )
        if not plan.hit and w.demand == 0:
            self._flag(
                "miss-without-load",
                w.seq,
                f"job {w.arrival.job}: plan claims a miss but no demand "
                "load follows",
            )

    # -------------------------------------------------------------- #

    def _admit(self, seq: int, file: str, nbytes: int, staged: bool) -> None:
        seg = self._segment()
        if file in seg.residency:
            self._flag(
                "duplicate-admission",
                seq,
                f"file {file!r} admitted while already resident",
            )
            return
        seg.residency[file] = nbytes
        seg.admissions += 1
        seg.bytes_admitted += nbytes
        if staged:
            seg.staged += 1
        used = seg.used
        if used > seg.peak_used:
            seg.peak_used = used
        if self.capacity is not None and used > self.capacity:
            self._flag(
                "capacity-exceeded",
                seq,
                f"occupancy {used} exceeds capacity {self.capacity} after "
                f"admitting {file!r}",
            )

    def _evict(self, seq: int, event: FileEvicted) -> None:
        seg = self._segment()
        size = seg.residency.pop(event.file, None)
        if size is None:
            self._flag(
                "evict-nonresident",
                seq,
                f"policy {event.policy!r} evicted {event.file!r} which is "
                "not resident",
            )
            return
        if size != event.bytes:
            self._flag(
                "evict-size-mismatch",
                seq,
                f"{event.file!r} evicted with {event.bytes} bytes but was "
                f"admitted with {size}",
            )
        seg.evictions += 1
        seg.bytes_evicted += size

    def _tick(self, seq: int, t: float) -> None:
        if t < self._clock:
            if self.split_on_time_reset:
                self._new_segment()
            else:
                self._flag(
                    "time-regression",
                    seq,
                    f"simulated time went backwards: {t} after {self._clock}",
                )
        self._clock = max(self._clock, t)

    # -------------------------------------------------------------- #

    def feed(self, seq: int, event: TraceEvent) -> None:
        self.events += 1
        if self._last_seq is not None and seq <= self._last_seq:
            self._flag(
                "seq-regression",
                seq,
                f"sequence number {seq} after {self._last_seq}",
            )
        self._last_seq = seq

        if isinstance(event, JobArrived):
            if event.job == 0 and self._seg is not None:
                self._new_segment()
            else:
                self._close_window()
            seg = self._segment()
            seg.jobs += 1
            self._window = _Window(seq, event)
            return

        seg = self._segment()
        w = self._window

        if isinstance(event, FileAdmitted):
            self._admit(seq, event.file, event.bytes, staged=event.cause == "staged")
            if w is not None:
                if event.cause == "demand":
                    w.demand += 1
                elif event.cause == "prefetch":
                    w.prefetch += 1
                else:
                    w.staged += 1
        elif isinstance(event, FileEvicted):
            self._evict(seq, event)
            if w is not None:
                w.evicts += 1
        elif isinstance(event, PlanComputed):
            self._seg_has_plan = True
            if w is not None:
                w.plans.append(event)
        elif isinstance(event, StageCompleted):
            self._tick(seq, event.t)
            self._admit(seq, event.file, event.bytes, staged=True)
            if w is not None:
                w.has_stage = True
        elif event.kind in TIMED_EVENT_KINDS:
            self._tick(seq, event.t)
            if w is not None:
                w.has_stage = True
        elif isinstance(event, WindowRolled):
            expected = 0 if self._window_index is None else self._window_index + 1
            if event.index == 0:
                self._window_index = 0
            elif event.index != expected:
                self._flag(
                    "window-index-gap",
                    seq,
                    f"WindowRolled index {event.index}, expected {expected}",
                )
                self._window_index = event.index
            else:
                self._window_index = event.index
            for name in ("byte_miss_ratio", "request_hit_ratio"):
                value = getattr(event, name)
                if not 0.0 <= value <= 1.0:
                    self._flag(
                        "ratio-out-of-range",
                        seq,
                        f"WindowRolled.{name} = {value} outside [0, 1]",
                    )
            if event.jobs < 1:
                self._flag(
                    "empty-window",
                    seq,
                    f"WindowRolled with jobs={event.jobs}",
                )

    def finish(self, capacity: int | None) -> ReconstructionReport:
        self._close_window()
        if not self.segments:
            self.segments.append(SegmentState(index=0))
        return ReconstructionReport(
            segments=self.segments,
            violations=self.violations,
            events=self.events,
            capacity=capacity,
        )


def _as_stream(source: TraceSource) -> Iterator[tuple[int, TraceEvent]]:
    if isinstance(source, TraceLog):
        return iter(source.sequenced())
    if isinstance(source, (str, Path)):
        return iter_trace(source)

    def gen() -> Iterator[tuple[int, TraceEvent]]:
        for i, item in enumerate(source):
            if isinstance(item, TraceEvent):
                yield i, item
            else:
                yield item

    return gen()


def reconstruct(
    source: TraceSource,
    *,
    capacity: int | None = None,
    split_on_time_reset: bool = False,
) -> ReconstructionReport:
    """Replay a trace into per-segment residency state, checking invariants.

    ``source`` may be a :class:`TraceLog`, a JSONL path, or any iterable
    of events / ``(seq, event)`` pairs (e.g. a
    :class:`~repro.telemetry.sinks.RingSink`'s contents or a streaming
    :func:`iter_trace`).  ``capacity`` enables the occupancy invariant.
    ``split_on_time_reset`` treats simulated time running backwards as a
    run boundary instead of a violation — use it for traces that
    concatenate several timed-SRM runs, which carry no job counter to
    split on.
    """
    recon = _Reconstructor(capacity, split_on_time_reset)
    for seq, event in _as_stream(source):
        recon.feed(seq, event)
    return recon.finish(capacity)


def verify_against_cache(
    report: ReconstructionReport, cache, *, segment: int = -1
) -> list[str]:
    """Differences between a reconstructed segment and a live cache state.

    Compares the reconstructed residency (file → size) of ``segment``
    against a :class:`~repro.cache.state.CacheState` byte for byte;
    returns a list of human-readable mismatches, empty when identical.
    """
    reconstructed = report.final_residency(segment)
    live = {str(f): cache.size_of(f) for f in cache.residents()}
    problems: list[str] = []
    for f in sorted(set(reconstructed) - set(live)):
        problems.append(f"trace says {f!r} is resident, live cache does not")
    for f in sorted(set(live) - set(reconstructed)):
        problems.append(f"live cache holds {f!r}, trace does not")
    for f in sorted(set(live) & set(reconstructed)):
        if live[f] != reconstructed[f]:
            problems.append(
                f"{f!r}: trace size {reconstructed[f]} != live size {live[f]}"
            )
    if not problems and report.segments[segment].used != cache.used:
        problems.append(
            f"occupancy mismatch: trace {report.segments[segment].used} != "
            f"live {cache.used}"
        )
    return problems
