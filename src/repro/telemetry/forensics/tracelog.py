"""Indexed and streaming access to recorded JSONL telemetry traces.

Two access modes:

* :func:`iter_trace` — a generator of ``(seq, event)`` pairs straight off
  the file, O(1) memory; use it for multi-million-event traces or when a
  single pass is enough (the reconstructor accepts it directly).
* :class:`TraceLog` — loads a trace (or any event iterable) and builds
  per-kind, per-file, per-job and per-window indexes for random access;
  this is what the diff / export tools operate on.

Traces recorded from a whole experiment concatenate several simulation
runs; each run restarts its job counter, so a ``JobArrived`` with
``job == 0`` marks a *segment* boundary (see :meth:`TraceLog.segments`).
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import TraceValidationError
from repro.telemetry.events import (
    EVENT_TYPES,
    JobArrived,
    TraceEvent,
    WindowRolled,
    validate_event,
    warn_torn_tail,
)

__all__ = ["iter_trace", "TraceLog", "JobWindow", "Segment"]

#: event kinds that reference a single file via a ``file`` field
FILE_EVENT_KINDS = frozenset(
    {
        "FileAdmitted",
        "FileEvicted",
        "StageStarted",
        "StageRetried",
        "StageFailedOver",
        "StageCompleted",
    }
)

#: event kinds carrying simulated time
TIMED_EVENT_KINDS = frozenset(
    {"StageStarted", "StageRetried", "StageFailedOver", "StageCompleted"}
)


def iter_trace(
    path: str | Path, *, validate: bool = True
) -> Iterator[tuple[int, TraceEvent]]:
    """Stream ``(seq, event)`` pairs from a JSONL trace file.

    Holds one line in memory at a time, so it scales to traces far larger
    than RAM.  With ``validate`` (the default) every record is checked
    against the event schema and a contiguous ``seq`` is enforced,
    raising :class:`~repro.errors.TraceValidationError` on the first bad
    line; ``validate=False`` trusts the file and only needs the ``kind``
    lookup to type each event.

    A final line without its trailing newline that fails to decode is a
    crash-torn tail, not corruption: iteration stops there with a
    recoverable :class:`~repro.errors.TraceTruncatedWarning` carrying the
    byte offset of the intact prefix.
    """
    expected_seq = 0
    offset = 0
    try:
        fh = open(path, "rb")
    except OSError as exc:
        raise TraceValidationError(
            f"cannot read trace {path}: {exc.strerror or exc}",
            path=str(path),
        ) from None
    with fh:
        for lineno, raw in enumerate(fh, start=1):
            has_newline = raw.endswith(b"\n")
            try:
                line = raw.decode("utf-8").strip()
            except UnicodeDecodeError as exc:
                if not has_newline:
                    warn_torn_tail(path, lineno, offset, f"bad UTF-8: {exc}")
                    return
                raise TraceValidationError(
                    f"{path}: line {lineno}: not valid UTF-8: {exc}",
                    path=str(path),
                    lineno=lineno,
                ) from None
            if not line:
                offset += len(raw)
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if not has_newline:
                    warn_torn_tail(path, lineno, offset, f"not valid JSON: {exc}")
                    return
                raise TraceValidationError(
                    f"{path}: line {lineno}: not valid JSON: {exc}",
                    path=str(path),
                    lineno=lineno,
                ) from None
            if validate:
                try:
                    validate_event(record)
                except TraceValidationError as exc:
                    field = f" (field {exc.field!r})" if exc.field else ""
                    raise TraceValidationError(
                        f"{path}: line {lineno}{field}: {exc}",
                        path=str(path),
                        lineno=lineno,
                        field=exc.field,
                    ) from None
                if record["seq"] != expected_seq:
                    raise TraceValidationError(
                        f"{path}: line {lineno} (field 'seq'): seq "
                        f"{record['seq']} out of order (expected {expected_seq})",
                        path=str(path),
                        lineno=lineno,
                        field="seq",
                    )
                expected_seq += 1
            try:
                cls = EVENT_TYPES[record["kind"]]
            except KeyError:
                raise TraceValidationError(
                    f"{path}: line {lineno}: unknown event kind "
                    f"{record.get('kind')!r}",
                    path=str(path),
                    lineno=lineno,
                    field="kind",
                ) from None
            event = cls(**{f.name: record[f.name] for f in fields(cls)})
            offset += len(raw)
            yield record.get("seq", lineno - 1), event


@dataclass(frozen=True)
class Segment:
    """One simulation run inside a (possibly concatenated) trace.

    ``start``/``end`` are event indexes into the owning :class:`TraceLog`
    (end exclusive).  ``timed`` is True when the segment contains staging
    events carrying simulated time (a timed-SRM run).
    """

    index: int
    start: int
    end: int
    timed: bool


@dataclass(frozen=True)
class JobWindow:
    """The event span of one serviced job: its ``JobArrived`` and every
    event up to (excluding) the next ``JobArrived``."""

    segment: int
    job: int
    request_id: int
    start: int
    end: int


class TraceLog:
    """A fully-loaded telemetry trace with per-dimension indexes."""

    def __init__(
        self,
        events: Iterable[tuple[int, TraceEvent] | TraceEvent],
        *,
        path: str | Path | None = None,
    ):
        self.path = Path(path) if path is not None else None
        self._seqs: list[int] = []
        self._events: list[TraceEvent] = []
        for item in events:
            if isinstance(item, TraceEvent):
                self._seqs.append(len(self._events))
                self._events.append(item)
            else:
                seq, event = item
                self._seqs.append(seq)
                self._events.append(event)
        self._by_kind: dict[str, list[int]] | None = None
        self._by_file: dict[str, list[int]] | None = None
        self._segments: list[Segment] | None = None
        self._jobs: list[JobWindow] | None = None

    @classmethod
    def load(cls, path: str | Path, *, validate: bool = True) -> "TraceLog":
        """Read a JSONL trace file into an indexed log."""
        return cls(iter_trace(path, validate=validate), path=path)

    # ------------------------------------------------------------------ #
    # plain access

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def event(self, index: int) -> TraceEvent:
        return self._events[index]

    def seq(self, index: int) -> int:
        """The recorded sequence number of the event at ``index``."""
        return self._seqs[index]

    def sequenced(self) -> Iterator[tuple[int, TraceEvent]]:
        return zip(self._seqs, self._events)

    # ------------------------------------------------------------------ #
    # indexes (built lazily, one pass each)

    def _ensure_kind_file_index(self) -> None:
        if self._by_kind is not None:
            return
        by_kind: dict[str, list[int]] = {}
        by_file: dict[str, list[int]] = {}
        for i, event in enumerate(self._events):
            by_kind.setdefault(event.kind, []).append(i)
            if event.kind in FILE_EVENT_KINDS:
                by_file.setdefault(event.file, []).append(i)
        self._by_kind = by_kind
        self._by_file = by_file

    def kinds(self) -> Counter:
        """Event counts by kind."""
        self._ensure_kind_file_index()
        assert self._by_kind is not None
        return Counter({k: len(v) for k, v in self._by_kind.items()})

    def by_kind(self, kind: str) -> list[tuple[int, TraceEvent]]:
        """All ``(seq, event)`` of one kind, in trace order."""
        self._ensure_kind_file_index()
        assert self._by_kind is not None
        return [(self._seqs[i], self._events[i]) for i in self._by_kind.get(kind, [])]

    def file_timeline(self, file_id: str) -> list[tuple[int, TraceEvent]]:
        """Every admission/eviction/staging event touching ``file_id``."""
        self._ensure_kind_file_index()
        assert self._by_file is not None
        return [
            (self._seqs[i], self._events[i]) for i in self._by_file.get(file_id, [])
        ]

    def files(self) -> list[str]:
        """All file ids appearing in per-file events, sorted."""
        self._ensure_kind_file_index()
        assert self._by_file is not None
        return sorted(self._by_file)

    def segments(self) -> list[Segment]:
        """Simulation-run spans: a new one starts at each ``job == 0``
        arrival (experiment traces concatenate runs back to back).  A
        trace with no ``JobArrived`` events is a single segment."""
        if self._segments is not None:
            return self._segments
        starts: list[int] = []
        for i, event in enumerate(self._events):
            if isinstance(event, JobArrived) and event.job == 0:
                starts.append(i)
        if not starts or starts[0] != 0:
            starts.insert(0, 0)
        segments = []
        for k, start in enumerate(starts):
            end = starts[k + 1] if k + 1 < len(starts) else len(self._events)
            timed = any(
                self._events[i].kind in TIMED_EVENT_KINDS for i in range(start, end)
            )
            segments.append(Segment(index=k, start=start, end=end, timed=timed))
        self._segments = segments
        return segments

    def jobs(self, segment: int | None = None) -> list[JobWindow]:
        """Per-job event windows (optionally of one segment only)."""
        if self._jobs is None:
            windows: list[JobWindow] = []
            for seg in self.segments():
                open_start: int | None = None
                open_event: JobArrived | None = None
                for i in range(seg.start, seg.end):
                    event = self._events[i]
                    if isinstance(event, JobArrived):
                        if open_event is not None:
                            windows.append(
                                JobWindow(
                                    segment=seg.index,
                                    job=open_event.job,
                                    request_id=open_event.request_id,
                                    start=open_start,  # type: ignore[arg-type]
                                    end=i,
                                )
                            )
                        open_start, open_event = i, event
                if open_event is not None:
                    windows.append(
                        JobWindow(
                            segment=seg.index,
                            job=open_event.job,
                            request_id=open_event.request_id,
                            start=open_start,  # type: ignore[arg-type]
                            end=seg.end,
                        )
                    )
            self._jobs = windows
        if segment is None:
            return self._jobs
        return [w for w in self._jobs if w.segment == segment]

    def job_timeline(self, job: int, *, segment: int = 0) -> list[TraceEvent]:
        """The events of one job window (``JobArrived`` included)."""
        for window in self.jobs(segment):
            if window.job == job:
                return self._events[window.start : window.end]
        return []

    def windows(self) -> list[list[WindowRolled]]:
        """``WindowRolled`` series, split where the window index restarts
        (each learning-curve run rolls its own window sequence)."""
        runs: list[list[WindowRolled]] = []
        current: list[WindowRolled] = []
        for event in self._events:
            if not isinstance(event, WindowRolled):
                continue
            if event.index == 0 and current:
                runs.append(current)
                current = []
            current.append(event)
        if current:
            runs.append(current)
        return runs

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        src = f", path={str(self.path)!r}" if self.path else ""
        return f"TraceLog(n={len(self._events)}{src})"
