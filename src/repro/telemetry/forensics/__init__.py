"""repro.telemetry.forensics — consuming recorded telemetry traces.

PR 3 made every run *recordable* (typed JSONL events, deterministic to
the byte); this package makes the recordings *usable*:

* :mod:`~repro.telemetry.forensics.tracelog` — an indexed
  :class:`TraceLog` reader (per-job, per-file and per-window timelines)
  plus :func:`iter_trace` streaming iteration for traces too large to
  hold in memory.
* :mod:`~repro.telemetry.forensics.reconstruct` — replays admission /
  eviction / staging events into a cache-residency timeline, checking
  invariants as it goes ("trace lint"): occupancy never exceeds
  capacity, no eviction of non-resident files, every ``PlanComputed``
  satisfied by the admissions that follow it, sim-time monotone.  A
  recorded run becomes self-verifying against the live simulator's final
  :class:`~repro.cache.state.CacheState`.
* :mod:`~repro.telemetry.forensics.diff` — aligns two same-workload
  traces (e.g. landlord vs. optbundle on one seed), finds the first
  divergent replacement decision and reports both policies' rationale
  fields and the cache contents each policy faced.
* :mod:`~repro.telemetry.forensics.anomaly` — rolling median + MAD
  outlier detection over ``WindowRolled`` byte-miss-ratio series.
* :mod:`~repro.telemetry.forensics.export` — Chrome trace-event (JSON)
  export; load the result in Perfetto / ``chrome://tracing`` to see jobs,
  cache churn and staging lifecycles on a timeline.

CLI entry points: ``repro-fbc analyze``, ``diff-traces``,
``export-chrome``.
"""

from repro.telemetry.forensics.anomaly import (
    Anomaly,
    TrailingMadDetector,
    WindowAnomaly,
    detect_anomalies,
    window_anomalies,
)
from repro.telemetry.forensics.diff import Divergence, TraceDiff, diff_traces
from repro.telemetry.forensics.export import (
    export_chrome,
    spans_to_chrome,
    to_chrome_trace,
)
from repro.telemetry.forensics.reconstruct import (
    InvariantViolation,
    ReconstructionReport,
    SegmentState,
    reconstruct,
    verify_against_cache,
)
from repro.telemetry.forensics.tracelog import (
    JobWindow,
    Segment,
    TraceLog,
    iter_trace,
)

__all__ = [
    # tracelog
    "TraceLog",
    "JobWindow",
    "Segment",
    "iter_trace",
    # reconstruct
    "reconstruct",
    "verify_against_cache",
    "ReconstructionReport",
    "SegmentState",
    "InvariantViolation",
    # diff
    "diff_traces",
    "TraceDiff",
    "Divergence",
    # anomaly
    "detect_anomalies",
    "window_anomalies",
    "Anomaly",
    "TrailingMadDetector",
    "WindowAnomaly",
    # export
    "to_chrome_trace",
    "spans_to_chrome",
    "export_chrome",
]
