"""Cross-policy divergence analysis of two same-workload traces.

Two policies replaying the *same seeded workload* produce event streams
that agree job for job until the first replacement decision where they
part ways; everything after that (residency, hits, byte traffic) is
downstream of that first divergence.  :func:`diff_traces` aligns the two
streams on job windows, finds that first divergent decision, and reports:

* the divergent event pair (e.g. Landlord's ``FileEvicted`` of a file
  OptFileBundle kept) with each policy's own rationale fields — the
  Landlord residual ``credit``/``last_refresh`` against the OptFileBundle
  history ``degree``;
* the cache contents each policy faced at that instant (the reconstructed
  residency at the start of the job window);
* each policy's ``PlanComputed`` for the job.

This automates the manual trace-grepping walkthrough EXPERIMENTS.md used
to carry; ``repro-fbc diff-traces A B`` prints the rendered report.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Union

from repro.telemetry.events import (
    FileAdmitted,
    FileEvicted,
    JobArrived,
    PlanComputed,
    event_to_dict,
)
from repro.telemetry.forensics.tracelog import JobWindow, TraceLog

__all__ = ["diff_traces", "TraceDiff", "Divergence", "CacheSnapshot"]


@dataclass(frozen=True)
class CacheSnapshot:
    """Reconstructed residency at one instant of one trace."""

    files: int
    used: int
    residents: tuple[str, ...]  # sorted file ids

    @classmethod
    def of(cls, residency: dict[str, int]) -> "CacheSnapshot":
        return cls(
            files=len(residency),
            used=sum(residency.values()),
            residents=tuple(sorted(residency)),
        )


@dataclass(frozen=True)
class Divergence:
    """The first decision where two traces disagree.

    ``a_event``/``b_event`` are the serialized divergent events (``None``
    when one side simply has no counterpart, e.g. one policy evicted and
    the other did not).  ``kind`` classifies the disagreement:
    ``eviction`` / ``admission`` / ``plan`` / ``workload`` /
    ``trailing-jobs``.
    """

    kind: str
    job: int
    request_id: int
    a_event: dict | None
    b_event: dict | None
    a_plan: dict | None
    b_plan: dict | None
    a_cache: CacheSnapshot
    b_cache: CacheSnapshot


@dataclass(frozen=True)
class TraceDiff:
    """Result of :func:`diff_traces`."""

    policy_a: str
    policy_b: str
    jobs_compared: int
    divergence: Divergence | None

    @property
    def identical(self) -> bool:
        return self.divergence is None

    def render(self) -> str:
        head = (
            f"diff: {self.policy_a or '?'} vs {self.policy_b or '?'} "
            f"({self.jobs_compared} jobs aligned)"
        )
        d = self.divergence
        if d is None:
            return head + "\nno divergent decision: the traces agree."
        lines = [
            head,
            f"first divergence: job {d.job} (request {d.request_id}), "
            f"kind: {d.kind}",
        ]

        def _side(label: str, policy: str, event, plan, cache) -> None:
            lines.append(f"  [{label}] {policy or '?'}:")
            if event is not None:
                detail = event.get("detail")
                rationale = f"  rationale: {detail}" if detail else ""
                lines.append(f"    event: {_fmt_event(event)}{rationale}")
            else:
                lines.append("    event: (no counterpart)")
            if plan is not None:
                lines.append(
                    f"    plan: loads={plan['loads']} "
                    f"prefetches={plan['prefetches']} "
                    f"evictions={plan['evictions']} hit={plan['hit']}"
                )
            lines.append(
                f"    cache at decision: {cache.files} files / {cache.used} bytes"
            )

        _side("a", self.policy_a, d.a_event, d.a_plan, d.a_cache)
        _side("b", self.policy_b, d.b_event, d.b_plan, d.b_cache)
        only_a = sorted(set(d.a_cache.residents) - set(d.b_cache.residents))
        only_b = sorted(set(d.b_cache.residents) - set(d.a_cache.residents))
        if only_a or only_b:
            lines.append(
                f"  residency delta before decision: "
                f"only-{self.policy_a or 'a'}={_clip(only_a)} "
                f"only-{self.policy_b or 'b'}={_clip(only_b)}"
            )
        return "\n".join(lines)


def _clip(names: list[str], limit: int = 8) -> str:
    if len(names) <= limit:
        return "[" + ",".join(names) + "]"
    return "[" + ",".join(names[:limit]) + f",... +{len(names) - limit}]"


def _fmt_event(record: dict) -> str:
    parts = [record["kind"]]
    for key in ("file", "bytes", "cause", "policy"):
        if key in record:
            parts.append(f"{key}={record[key]}")
    return f"seq {record['seq']}: " + " ".join(parts)


def _serialize(seq: int, event) -> dict:
    return event_to_dict(seq, event)


def _policy_name(log: TraceLog) -> str:
    for event in log:
        if isinstance(event, (PlanComputed, FileEvicted)):
            return event.policy
    return ""


def _window_decisions(log: TraceLog, window: JobWindow):
    """(evictions, admissions, plan) event triples of one job window."""
    evictions: list[tuple[int, FileEvicted]] = []
    admissions: list[tuple[int, FileAdmitted]] = []
    plan: tuple[int, PlanComputed] | None = None
    for i in range(window.start + 1, window.end):
        event = log.event(i)
        if isinstance(event, FileEvicted):
            evictions.append((log.seq(i), event))
        elif isinstance(event, FileAdmitted):
            admissions.append((log.seq(i), event))
        elif isinstance(event, PlanComputed) and plan is None:
            plan = (log.seq(i), event)
    return evictions, admissions, plan


def _first_unmatched(events, other_files):
    for seq, event in events:
        if event.file not in other_files:
            return _serialize(seq, event)
    return None


def _apply(residency: dict[str, int], log: TraceLog, window: JobWindow) -> None:
    """Advance a residency reconstruction across one job window."""
    for i in range(window.start, window.end):
        event = log.event(i)
        if isinstance(event, FileAdmitted):
            residency[event.file] = event.bytes
        elif isinstance(event, FileEvicted):
            residency.pop(event.file, None)


def diff_traces(
    a: Union[TraceLog, str, Path],
    b: Union[TraceLog, str, Path],
    *,
    segment: int = 0,
) -> TraceDiff:
    """Find the first divergent decision between two same-workload traces.

    Both traces must record the same seeded workload (the tool verifies
    job arrivals agree — a mismatch is reported as a ``workload``
    divergence rather than silently comparing apples to oranges).
    Eviction/admission order *within* one job is not significant: the
    decision compared is the per-job set of files evicted and admitted.
    """
    log_a = a if isinstance(a, TraceLog) else TraceLog.load(a)
    log_b = b if isinstance(b, TraceLog) else TraceLog.load(b)
    policy_a, policy_b = _policy_name(log_a), _policy_name(log_b)

    jobs_a, jobs_b = log_a.jobs(segment), log_b.jobs(segment)
    residency_a: dict[str, int] = {}
    residency_b: dict[str, int] = {}
    jobs_compared = 0

    for wa, wb in zip(jobs_a, jobs_b):
        arr_a = log_a.event(wa.start)
        arr_b = log_b.event(wb.start)
        assert isinstance(arr_a, JobArrived) and isinstance(arr_b, JobArrived)
        snap_a, snap_b = CacheSnapshot.of(residency_a), CacheSnapshot.of(residency_b)
        ev_a, ad_a, plan_a = _window_decisions(log_a, wa)
        ev_b, ad_b, plan_b = _window_decisions(log_b, wb)
        plan_a_d = _serialize(*plan_a) if plan_a else None
        plan_b_d = _serialize(*plan_b) if plan_b else None

        def _diverge(kind, a_event, b_event):
            return TraceDiff(
                policy_a=policy_a,
                policy_b=policy_b,
                jobs_compared=jobs_compared,
                divergence=Divergence(
                    kind=kind,
                    job=arr_a.job,
                    request_id=arr_a.request_id,
                    a_event=a_event,
                    b_event=b_event,
                    a_plan=plan_a_d,
                    b_plan=plan_b_d,
                    a_cache=snap_a,
                    b_cache=snap_b,
                ),
            )

        if (arr_a.request_id, arr_a.n_files, arr_a.bytes_requested) != (
            arr_b.request_id,
            arr_b.n_files,
            arr_b.bytes_requested,
        ):
            return _diverge(
                "workload",
                _serialize(log_a.seq(wa.start), arr_a),
                _serialize(log_b.seq(wb.start), arr_b),
            )

        evict_files_a = {e.file for _, e in ev_a}
        evict_files_b = {e.file for _, e in ev_b}
        if evict_files_a != evict_files_b:
            return _diverge(
                "eviction",
                _first_unmatched(ev_a, evict_files_b),
                _first_unmatched(ev_b, evict_files_a),
            )
        admit_files_a = {e.file for _, e in ad_a}
        admit_files_b = {e.file for _, e in ad_b}
        if admit_files_a != admit_files_b:
            return _diverge(
                "admission",
                _first_unmatched(ad_a, admit_files_b),
                _first_unmatched(ad_b, admit_files_a),
            )
        pa = plan_a[1] if plan_a else None
        pb = plan_b[1] if plan_b else None
        if (pa is None) != (pb is None) or (
            pa is not None
            and pb is not None
            and (pa.loads, pa.prefetches, pa.evictions, pa.hit)
            != (pb.loads, pb.prefetches, pb.evictions, pb.hit)
        ):
            return _diverge("plan", plan_a_d, plan_b_d)

        _apply(residency_a, log_a, wa)
        _apply(residency_b, log_b, wb)
        jobs_compared += 1

    if len(jobs_a) != len(jobs_b):
        longer, log, windows = (
            ("a", log_a, jobs_a) if len(jobs_a) > len(jobs_b) else ("b", log_b, jobs_b)
        )
        w = windows[jobs_compared]
        arr = log.event(w.start)
        trailing = _serialize(log.seq(w.start), arr)
        return TraceDiff(
            policy_a=policy_a,
            policy_b=policy_b,
            jobs_compared=jobs_compared,
            divergence=Divergence(
                kind="trailing-jobs",
                job=arr.job,
                request_id=arr.request_id,
                a_event=trailing if longer == "a" else None,
                b_event=trailing if longer == "b" else None,
                a_plan=None,
                b_plan=None,
                a_cache=CacheSnapshot.of(residency_a),
                b_cache=CacheSnapshot.of(residency_b),
            ),
        )

    return TraceDiff(
        policy_a=policy_a,
        policy_b=policy_b,
        jobs_compared=jobs_compared,
        divergence=None,
    )
