"""Windowed anomaly detection over recorded metric series.

Learning-curve runs emit one ``WindowRolled`` event per window of jobs;
the byte-miss-ratio series is normally smooth (warm-up decay, then a
steady-state plateau).  A sudden spike — a fault burst, a workload phase
change, a policy pathology — stands out against the recent past.

The detector is deliberately simple and dependency-free: a *trailing*
rolling median with a median-absolute-deviation (MAD) scale, flagging
points whose robust z-score

    z = 0.6745 * (x - median) / MAD

exceeds a threshold (default 3.5, the usual Iglewicz–Hoaglin cut-off).
Median/MAD rather than mean/stddev so that the anomalies being hunted do
not drag the baseline toward themselves, and *trailing* (only points
before the current one) so a point is never judged against a window that
already contains it.
"""

from __future__ import annotations

import statistics
from collections import deque
from dataclasses import dataclass
from typing import Iterable

from repro.errors import ConfigError
from repro.telemetry.forensics.tracelog import TraceLog

__all__ = [
    "detect_anomalies",
    "window_anomalies",
    "Anomaly",
    "TrailingMadDetector",
    "WindowAnomaly",
]

#: scale factor making MAD consistent with stddev for normal data
_MAD_K = 0.6745


@dataclass(frozen=True)
class Anomaly:
    """One flagged point of a metric series."""

    index: int
    value: float
    median: float
    mad: float
    score: float


@dataclass(frozen=True)
class WindowAnomaly:
    """An :class:`Anomaly` located in a trace's ``WindowRolled`` series."""

    run: int
    window_index: int
    jobs: int
    anomaly: Anomaly


class TrailingMadDetector:
    """The trailing median+MAD detector as an online, point-at-a-time class.

    :func:`detect_anomalies` (offline, whole series) and the service's
    live SLO engine (online, one window at a time) share this exact
    arithmetic — feed values through :meth:`update` and get back an
    :class:`Anomaly` (or ``None``) judged against the up-to-``window``
    *preceding* points.  The first ``min_history`` points are never
    flagged (no baseline to judge against); ``min_mad`` floors the scale
    so a perfectly flat history does not turn any infinitesimal wiggle
    into an "anomaly" of infinite score.
    """

    __slots__ = ("window", "threshold", "min_history", "min_mad", "_history", "_seen")

    def __init__(
        self,
        *,
        window: int = 9,
        threshold: float = 3.5,
        min_history: int = 5,
        min_mad: float = 1e-9,
    ):
        if window < 2:
            raise ConfigError(f"window must be >= 2, got {window}")
        if min_history < 2:
            raise ConfigError(f"min_history must be >= 2, got {min_history}")
        if threshold <= 0:
            raise ConfigError(f"threshold must be > 0, got {threshold}")
        if min_mad <= 0:
            raise ConfigError(f"min_mad must be > 0, got {min_mad}")
        self.window = window
        self.threshold = threshold
        self.min_history = min_history
        self.min_mad = min_mad
        self._history: deque[float] = deque(maxlen=window)
        self._seen = 0

    def score(self, x: float) -> float:
        """The robust z-score ``x`` *would* get against the current history."""
        if self._seen < self.min_history:
            return 0.0
        med = statistics.median(self._history)
        mad = statistics.median(abs(h - med) for h in self._history)
        return _MAD_K * abs(x - med) / max(mad, self.min_mad)

    def update(self, x: float) -> Anomaly | None:
        """Judge one point against the trailing history, then absorb it."""
        x = float(x)
        anomaly: Anomaly | None = None
        if self._seen >= self.min_history:
            med = statistics.median(self._history)
            mad = statistics.median(abs(h - med) for h in self._history)
            score = _MAD_K * abs(x - med) / max(mad, self.min_mad)
            if score > self.threshold:
                anomaly = Anomaly(
                    index=self._seen, value=x, median=med, mad=mad, score=score
                )
        self._history.append(x)
        self._seen += 1
        return anomaly


def detect_anomalies(
    values: Iterable[float],
    *,
    window: int = 9,
    threshold: float = 3.5,
    min_history: int = 5,
    min_mad: float = 1e-9,
) -> list[Anomaly]:
    """Flag outliers in a series by trailing rolling median + MAD.

    For each point, the baseline is the median of the up-to-``window``
    *preceding* points and the scale is their MAD; the point is flagged
    when ``0.6745 * |x - median| / max(MAD, min_mad)`` exceeds
    ``threshold``.  Offline face of :class:`TrailingMadDetector`.
    """
    detector = TrailingMadDetector(
        window=window,
        threshold=threshold,
        min_history=min_history,
        min_mad=min_mad,
    )
    anomalies: list[Anomaly] = []
    for v in values:
        found = detector.update(float(v))
        if found is not None:
            anomalies.append(found)
    return anomalies


def window_anomalies(
    log: TraceLog,
    *,
    window: int = 9,
    threshold: float = 3.5,
    min_history: int = 5,
    min_mad: float = 1e-9,
) -> list[WindowAnomaly]:
    """Run :func:`detect_anomalies` over every ``WindowRolled`` run of a
    trace's byte-miss-ratio series.

    Each learning-curve run (window index restarting at 0) is analysed
    independently so one run's steady state is never compared against
    another run's warm-up.  Traces without ``WindowRolled`` events yield
    an empty list.
    """
    results: list[WindowAnomaly] = []
    for run_index, run in enumerate(log.windows()):
        found = detect_anomalies(
            (w.byte_miss_ratio for w in run),
            window=window,
            threshold=threshold,
            min_history=min_history,
            min_mad=min_mad,
        )
        for a in found:
            rolled = run[a.index]
            results.append(
                WindowAnomaly(
                    run=run_index,
                    window_index=rolled.index,
                    jobs=rolled.jobs,
                    anomaly=a,
                )
            )
    return results
