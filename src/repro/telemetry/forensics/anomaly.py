"""Windowed anomaly detection over recorded metric series.

Learning-curve runs emit one ``WindowRolled`` event per window of jobs;
the byte-miss-ratio series is normally smooth (warm-up decay, then a
steady-state plateau).  A sudden spike — a fault burst, a workload phase
change, a policy pathology — stands out against the recent past.

The detector is deliberately simple and dependency-free: a *trailing*
rolling median with a median-absolute-deviation (MAD) scale, flagging
points whose robust z-score

    z = 0.6745 * (x - median) / MAD

exceeds a threshold (default 3.5, the usual Iglewicz–Hoaglin cut-off).
Median/MAD rather than mean/stddev so that the anomalies being hunted do
not drag the baseline toward themselves, and *trailing* (only points
before the current one) so a point is never judged against a window that
already contains it.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ConfigError
from repro.telemetry.forensics.tracelog import TraceLog

__all__ = ["detect_anomalies", "window_anomalies", "Anomaly", "WindowAnomaly"]

#: scale factor making MAD consistent with stddev for normal data
_MAD_K = 0.6745


@dataclass(frozen=True)
class Anomaly:
    """One flagged point of a metric series."""

    index: int
    value: float
    median: float
    mad: float
    score: float


@dataclass(frozen=True)
class WindowAnomaly:
    """An :class:`Anomaly` located in a trace's ``WindowRolled`` series."""

    run: int
    window_index: int
    jobs: int
    anomaly: Anomaly


def detect_anomalies(
    values: Iterable[float],
    *,
    window: int = 9,
    threshold: float = 3.5,
    min_history: int = 5,
    min_mad: float = 1e-9,
) -> list[Anomaly]:
    """Flag outliers in a series by trailing rolling median + MAD.

    For each point, the baseline is the median of the up-to-``window``
    *preceding* points and the scale is their MAD; the point is flagged
    when ``0.6745 * |x - median| / max(MAD, min_mad)`` exceeds
    ``threshold``.  The first ``min_history`` points are never flagged
    (no baseline to judge against).  ``min_mad`` floors the scale so a
    perfectly flat history (MAD = 0) does not turn any infinitesimal
    wiggle into an "anomaly" of infinite score — with the floor, a flat
    history still flags only genuine jumps.
    """
    if window < 2:
        raise ConfigError(f"window must be >= 2, got {window}")
    if min_history < 2:
        raise ConfigError(f"min_history must be >= 2, got {min_history}")
    if threshold <= 0:
        raise ConfigError(f"threshold must be > 0, got {threshold}")
    if min_mad <= 0:
        raise ConfigError(f"min_mad must be > 0, got {min_mad}")

    series = [float(v) for v in values]
    anomalies: list[Anomaly] = []
    for i, x in enumerate(series):
        if i < min_history:
            continue
        history: Sequence[float] = series[max(0, i - window) : i]
        med = statistics.median(history)
        mad = statistics.median(abs(h - med) for h in history)
        scale = max(mad, min_mad)
        score = _MAD_K * abs(x - med) / scale
        if score > threshold:
            anomalies.append(
                Anomaly(index=i, value=x, median=med, mad=mad, score=score)
            )
    return anomalies


def window_anomalies(
    log: TraceLog,
    *,
    window: int = 9,
    threshold: float = 3.5,
    min_history: int = 5,
    min_mad: float = 1e-9,
) -> list[WindowAnomaly]:
    """Run :func:`detect_anomalies` over every ``WindowRolled`` run of a
    trace's byte-miss-ratio series.

    Each learning-curve run (window index restarting at 0) is analysed
    independently so one run's steady state is never compared against
    another run's warm-up.  Traces without ``WindowRolled`` events yield
    an empty list.
    """
    results: list[WindowAnomaly] = []
    for run_index, run in enumerate(log.windows()):
        found = detect_anomalies(
            (w.byte_miss_ratio for w in run),
            window=window,
            threshold=threshold,
            min_history=min_history,
            min_mad=min_mad,
        )
        for a in found:
            rolled = run[a.index]
            results.append(
                WindowAnomaly(
                    run=run_index,
                    window_index=rolled.index,
                    jobs=rolled.jobs,
                    anomaly=a,
                )
            )
    return results
