"""Core objects of the determinism linter: findings, rules, source files.

The linter exists because the reproduction's experimental claim — same
seed ⇒ byte-identical plans, traces and byte-miss ratios — rests on
conventions (no wall-clock time in simulation paths, no unseeded RNG, no
set-iteration tie-breaks, all exceptions rooted in :mod:`repro.errors`)
that runtime differential tests only catch after a full run.  Rules here
check those conventions statically, per file, on the stdlib :mod:`ast`.

A rule is a subclass of :class:`Rule` producing :class:`Finding` objects;
a source file is parsed once into a :class:`SourceModule` shared by every
rule.  Inline suppressions use the comment form::

    risky_call()  # repro: allow[RPR001] host time feeds a histogram only

on the flagged line or the line directly above it.  A justification text
after the closing bracket is required — a bare ``allow`` is itself a
finding (``RPR900``), so every suppression documents *why* the hazard is
acceptable.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

from repro.errors import LintError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.analysis.lint.config import LintConfig

__all__ = [
    "Finding",
    "Rule",
    "SourceModule",
    "Suppression",
    "parse_suppressions",
]

#: comment grammar: ``# repro: allow[RPR001]`` or ``allow[RPR001,RPR003]``
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[A-Z0-9,\s]+)\]\s*(?P<reason>.*)$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Interprocedural findings (RPR101+) additionally carry a ``witness``
    call chain — hop-by-hop strings from the flagged function down to
    the offending effect site — so a report is actionable without
    re-running the analysis.  File-local findings leave it empty, and an
    empty witness is omitted from :meth:`as_dict` to keep the JSON
    report shape of version 1 unchanged for them.
    """

    rule: str  #: rule id, e.g. ``"RPR003"``
    severity: str  #: ``"error"`` or ``"warning"``
    path: str  #: display path of the offending file
    line: int  #: 1-based line number
    col: int  #: 0-based column offset
    message: str
    witness: tuple[str, ...] = ()  #: call chain for interprocedural rules

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.witness:
            out["witness"] = list(self.witness)
        return out

    def render(self) -> str:
        head = (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )
        if not self.witness:
            return head
        hops = "\n".join(f"      {hop}" for hop in self.witness)
        return f"{head}\n    witness:\n{hops}"


@dataclass(frozen=True)
class Suppression:
    """One inline ``# repro: allow[...]`` comment."""

    line: int  #: line the comment sits on
    rules: frozenset[str]
    reason: str  #: justification text after the bracket (may be empty)


def parse_suppressions(text: str, path: str) -> dict[int, Suppression]:
    """Extract inline suppressions from source text, keyed by line.

    Uses the tokenizer so that ``# repro: allow[...]`` inside string
    literals is not mistaken for a suppression.  Unparsable source yields
    no suppressions (the caller surfaces the syntax error separately).
    """
    out: dict[int, Suppression] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(tok.string)
        if match is None:
            continue
        rules = frozenset(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        out[tok.start[0]] = Suppression(
            line=tok.start[0], rules=rules, reason=match.group("reason").strip()
        )
    return out


class SourceModule:
    """One parsed Python source file, shared by every rule."""

    def __init__(self, path: Path, display_path: str, text: str, tree: ast.Module):
        self.path = path
        self.display_path = display_path
        self.text = text
        self.tree = tree
        self.suppressions = parse_suppressions(text, display_path)
        self._lines = text.splitlines()

    def _is_comment_line(self, line: int) -> bool:
        if not 1 <= line <= len(self._lines):
            return False
        stripped = self._lines[line - 1].strip()
        return stripped.startswith("#")

    @classmethod
    def load(cls, path: Path, display_path: str | None = None) -> "SourceModule":
        """Read and parse one file; raises :class:`LintError` on failure."""
        display = display_path if display_path is not None else path.as_posix()
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            raise LintError(f"no such file: {path}") from None
        except IsADirectoryError:
            raise LintError(f"is a directory, not a source file: {path}") from None
        except OSError as exc:
            raise LintError(f"cannot read {path}: {exc}") from None
        try:
            text = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise LintError(
                f"{display}: source is not valid UTF-8 "
                f"(byte offset {exc.start})"
            ) from None
        try:
            tree = ast.parse(text, filename=display)
        except SyntaxError as exc:
            lineno = exc.lineno if exc.lineno is not None else 0
            raise LintError(
                f"{display}:{lineno}: source does not parse: {exc.msg}"
            ) from None
        return cls(path, display, text, tree)

    def suppressed(self, finding: Finding) -> Suppression | None:
        """The suppression covering ``finding``, if any.

        A suppression applies to findings on its own line, or — in
        comment-above style — to the first code line below it: the whole
        contiguous comment block directly above a flagged line is
        searched, so multi-line justifications work.
        """
        supp = self.suppressions.get(finding.line)
        if supp is not None and finding.rule in supp.rules:
            return supp
        line = finding.line - 1
        while self._is_comment_line(line):
            supp = self.suppressions.get(line)
            if supp is not None and finding.rule in supp.rules:
                return supp
            line -= 1
        return None


class Rule:
    """Base class of all lint rules.

    Subclasses set :attr:`id` / :attr:`title` / :attr:`severity` and
    implement :meth:`check`, yielding findings for one module.  Path
    applicability (allowlists / focus dirs) is decided by the
    :class:`~repro.analysis.lint.config.LintConfig`, not the rule.
    """

    id: str = "RPR000"
    title: str = "abstract rule"
    severity: str = "error"

    def check(self, module: SourceModule, config: "LintConfig") -> Iterator[Finding]:
        raise NotImplementedError  # pragma: no cover - abstract

    def finding(
        self, module: SourceModule, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=module.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )
