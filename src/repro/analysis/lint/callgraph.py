"""Project call graph for the whole-program lint rules (RPR101–RPR103).

The file-local rules (RPR001–RPR004) see one module at a time, so a
single helper call can smuggle an effect into a pure path undetected.
This module builds the interprocedural view: every function and method
in the linted file set becomes a node, every statically-resolvable call
an edge, and the effect-inference pass (:mod:`repro.analysis.lint
.effects`) propagates effects over the edges.

The build is two-phase so the parallel lint runner can fan out:

* :func:`extract_module` turns one parsed :class:`SourceModule` into a
  picklable :class:`ModuleSummary` — functions, classes, call sites with
  *locally* resolved targets, per-scope type bindings.  No AST nodes
  survive extraction, so summaries cross process boundaries.
* :class:`CallGraph` links summaries: imports are resolved across
  modules, constructor calls land on ``__init__``, method calls resolve
  through annotation/assignment-derived receiver types with *virtual
  dispatch* (a call through a base class also reaches every project
  subclass override — this is how ``POLICY_REGISTRY`` dispatch through
  :class:`~repro.cache.policy.ReplacementPolicy` is covered), decorators
  and ``functools.partial`` contribute edges, and injectable
  :data:`DEFAULT_EDGE_HINTS` add edges no static analysis can see.

Calls that cannot be resolved — subscripted callables
(``REGISTRY[name]()``), ``getattr(...)()``, call results called again,
function-valued locals — degrade to *warnings* collected on the graph,
never a crash and never a silent drop.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Iterator, Mapping

from repro.analysis.lint.framework import SourceModule

__all__ = [
    "CallKind",
    "CallSite",
    "FunctionInfo",
    "ClassInfo",
    "ModuleSummary",
    "CallGraph",
    "UnresolvedCall",
    "DEFAULT_EDGE_HINTS",
    "extract_module",
    "module_name_for",
]

#: pseudo-function holding a module's import-time statements
MODULE_BODY = "<module>"

#: names of builtin callables (used to separate "unknown local callable"
#: — a dynamic-dispatch warning — from plain builtin calls)
_BUILTIN_NAMES = frozenset(dir(builtins))

#: wrappers whose *argument* runs elsewhere (executor hop / thread pool):
#: the wrapped callable must NOT contribute edges to the caller
_EXECUTOR_HOPS = frozenset(
    {
        "asyncio.to_thread",
        "loop.run_in_executor",
        "run_in_executor",
        "concurrent.futures.ThreadPoolExecutor.submit",
    }
)

#: callables whose first argument is itself called later in-thread —
#: the call site contributes an edge to the argument
_PARTIAL_WRAPPERS = frozenset({"functools.partial", "partial"})


def module_name_for(display_path: str) -> str:
    """Dotted module name derived from a posix display path.

    ``src/repro/cache/lru.py`` → ``repro.cache.lru`` (any path with a
    ``repro`` component anchors there, so absolute and repo-relative
    invocations agree); paths outside the package fall back to the
    relative path with ``/`` → ``.`` so same-directory fixtures can
    import each other by stem.
    """
    parts = display_path.split("/")
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "repro" in parts:
        parts = parts[parts.index("repro") :]
    parts = [p for p in parts if p and p not in (".", "..")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else display_path


class CallKind:
    """How a call site was locally classified (resolution finishes at link)."""

    DIRECT = "direct"  #: dotted target (local def, import, or external)
    SELF = "self"  #: ``self.meth(...)`` / ``cls.meth(...)``
    METHOD = "method"  #: ``obj.meth(...)`` with a typed/untyped receiver
    DYNAMIC = "dynamic"  #: ``xs[i]()``, ``getattr(..)()``, ``f()()``, local var


@dataclass(frozen=True)
class CallSite:
    """One call expression inside one function.

    ``region`` partitions a function body for order-sensitive rules:
    region 0 is the straight-line top level, and every loop body gets a
    fresh id — statements inside a loop execute repeatedly, so ordering
    constraints only hold *within* one region, never across regions.
    """

    line: int
    col: int
    call: str  #: source text of the callee expression (``ast.unparse``)
    kind: str  #: a :class:`CallKind` value
    target: str | None  #: dotted target (import-resolved) for DIRECT calls
    receiver_type: str | None = None  #: dotted class name for METHOD calls
    method: str | None = None  #: attribute name for SELF/METHOD calls
    region: int = 0  #: 0 = function top level, >0 = a loop body


@dataclass(frozen=True)
class UnresolvedCall:
    """A dynamic call the graph cannot follow (recorded, never fatal)."""

    path: str
    function: str
    line: int
    call: str
    reason: str

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "function": self.function,
            "line": self.line,
            "call": self.call,
            "reason": self.reason,
        }


@dataclass
class FunctionInfo:
    """One function/method (or the module-body pseudo-function)."""

    id: str  #: ``<module>.<qualname>`` — globally unique node id
    module: str
    path: str
    qualname: str  #: ``Class.method`` / ``func`` / ``outer.<locals>.inner``
    line: int
    is_async: bool
    class_name: str | None  #: dotted-local class for methods
    parent: str | None  #: enclosing function id for nested defs
    decorators: tuple[str, ...] = ()  #: import-resolved dotted decorators
    calls: tuple[CallSite, ...] = ()
    #: intrinsic (directly-performed) effects: (effect, line, call text)
    intrinsic: tuple[tuple[str, int, str], ...] = ()


@dataclass
class ClassInfo:
    """One class: bases, methods, and inferred attribute types."""

    name: str  #: local (possibly nested) class name
    module: str
    line: int
    bases: tuple[str, ...]  #: import-resolved dotted base names
    methods: dict[str, str] = field(default_factory=dict)  #: name → fn id
    #: ``self.attr`` → dotted type name (annotation- or ctor-derived)
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleSummary:
    """Everything the linker needs from one file (picklable)."""

    module: str
    path: str
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    imports: dict[str, str] = field(default_factory=dict)
    unresolved: list[UnresolvedCall] = field(default_factory=list)


#: caller-id fnmatch pattern → callee-id fnmatch patterns.  The shipped
#: hints wire the registry-based dispatch sites static resolution cannot
#: see: ``make_policy`` instantiates every registered policy class via a
#: class-valued local.  Tests inject their own hints.
DEFAULT_EDGE_HINTS: Mapping[str, tuple[str, ...]] = {
    "repro.cache.registry.make_policy": ("repro.cache.*.__init__",),
}


# --------------------------------------------------------------------- #
# extraction (per-file, parallelisable)


def _dotted_source(node: ast.expr) -> str | None:
    """``a.b.c`` chains as a dotted string, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _import_map(tree: ast.Module) -> dict[str, str]:
    out: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name != "*":
                    out[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return out


def _safe_unparse(node: ast.expr) -> str:
    try:
        return ast.unparse(node)
    except (ValueError, RecursionError):  # pragma: no cover - deep nesting
        return "<expr>"


class _Extractor:
    """Walks one module, building its :class:`ModuleSummary`."""

    def __init__(self, module: SourceModule, effect_tables: "_EffectTables"):
        self.src = module
        self.tables = effect_tables
        self.summary = ModuleSummary(
            module=module_name_for(module.display_path),
            path=module.display_path,
        )
        self.imports = _import_map(module.tree)
        self.summary.imports = dict(self.imports)
        self._region_counters: dict[str, int] = {}

    # -------------------------------------------------------------- #

    def run(self) -> ModuleSummary:
        mod = self.summary.module
        body_fn = FunctionInfo(
            id=f"{mod}.{MODULE_BODY}",
            module=mod,
            path=self.summary.path,
            qualname=MODULE_BODY,
            line=1,
            is_async=False,
            class_name=None,
            parent=None,
        )
        self.summary.functions[body_fn.id] = body_fn
        self._walk_body(
            self.src.tree.body, owner=body_fn, class_ctx=None, prefix=""
        )
        return self.summary

    def _walk_body(
        self,
        body: list[ast.stmt],
        *,
        owner: FunctionInfo,
        class_ctx: ClassInfo | None,
        prefix: str,
    ) -> None:
        """Collect defs/classes from ``body``; everything else belongs to
        ``owner`` (module body, class body, or enclosing function)."""
        calls: list[CallSite] = list(owner.calls)
        intrinsic: list[tuple[str, int, str]] = list(owner.intrinsic)
        local_types = _LocalTypes(self.imports, self.summary, class_ctx)
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(stmt, class_ctx=class_ctx, prefix=prefix)
                continue
            if isinstance(stmt, ast.ClassDef):
                self._add_class(stmt, owner=owner, prefix=prefix)
                continue
            local_types.feed(stmt)
            self._scan(stmt, owner, calls, intrinsic, local_types, 0, root=stmt)
        owner.calls = tuple(calls)
        owner.intrinsic = tuple(intrinsic)

    def _next_region(self, owner_id: str) -> int:
        self._region_counters[owner_id] = (
            self._region_counters.get(owner_id, 0) + 1
        )
        return self._region_counters[owner_id]

    def _scan(
        self,
        node: ast.AST,
        owner: FunctionInfo,
        calls: list[CallSite],
        intrinsic: list[tuple[str, int, str]],
        local_types: "_LocalTypes",
        region: int,
        *,
        root: ast.stmt,
    ) -> None:
        """Recursive statement walk: records calls and ``global`` uses,
        skips nested def/class, allocates a fresh region per loop body."""
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ) and node is not root:
            return
        if isinstance(node, ast.Call):
            self._record_call(node, owner, calls, intrinsic, local_types, region)
        elif isinstance(node, ast.Global):
            intrinsic.append(
                ("global_state", node.lineno, f"global {', '.join(node.names)}")
            )
        child_region = region
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            child_region = self._next_region(owner.id)
        for child in ast.iter_child_nodes(node):
            self._scan(
                child, owner, calls, intrinsic, local_types, child_region,
                root=root,
            )

    # -------------------------------------------------------------- #

    def _add_function(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        *,
        class_ctx: ClassInfo | None,
        prefix: str,
    ) -> None:
        qualname = f"{prefix}{node.name}" if prefix else node.name
        mod = self.summary.module
        fn = FunctionInfo(
            id=f"{mod}.{qualname}",
            module=mod,
            path=self.summary.path,
            qualname=qualname,
            line=node.lineno,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            class_name=class_ctx.name if class_ctx is not None else None,
            parent=None,
            decorators=tuple(
                resolved
                for resolved in (
                    self._resolve_dotted(dec) for dec in node.decorator_list
                )
                if resolved is not None
            ),
        )
        self.summary.functions[fn.id] = fn
        if class_ctx is not None and "." not in qualname.replace(
            f"{class_ctx.name}.", "", 1
        ):
            class_ctx.methods[node.name] = fn.id
        # the function's own statements (nested defs become children)
        local_types = _LocalTypes(self.imports, self.summary, class_ctx)
        local_types.feed_args(node.args)
        calls: list[CallSite] = []
        intrinsic: list[tuple[str, int, str]] = []
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_prefix = f"{qualname}.<locals>."
                child = self._add_nested(stmt, fn, class_ctx, child_prefix)
                self.summary.functions[child.id] = child
                continue
            if isinstance(stmt, ast.ClassDef):
                self._add_class(stmt, owner=fn, prefix=f"{qualname}.<locals>.")
                continue
            local_types.feed(stmt)
            if class_ctx is not None and node.name == "__init__":
                self._collect_attr_types(stmt, class_ctx, local_types)
            self._scan(stmt, fn, calls, intrinsic, local_types, 0, root=stmt)
        fn.calls = tuple(calls)
        fn.intrinsic = tuple(intrinsic)
        # annotation-derived attribute types also come from non-__init__
        # AnnAssign on self (e.g. dataclass-style declarations)
        if class_ctx is not None:
            for stmt in node.body:
                self._collect_attr_types(stmt, class_ctx, local_types)

    def _add_nested(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        parent: FunctionInfo,
        class_ctx: ClassInfo | None,
        prefix: str,
    ) -> FunctionInfo:
        # build via the normal path, then re-parent
        before = set(self.summary.functions)
        self._add_function(node, class_ctx=None, prefix=prefix)
        created = [
            f for fid, f in self.summary.functions.items() if fid not in before
        ]
        child = next(
            f for f in created if f.qualname == f"{prefix}{node.name}"
        )
        child.parent = parent.id
        return child

    def _add_class(
        self, node: ast.ClassDef, *, owner: FunctionInfo, prefix: str
    ) -> None:
        name = f"{prefix}{node.name}" if prefix else node.name
        bases = tuple(
            resolved
            for resolved in (self._resolve_dotted(b) for b in node.bases)
            if resolved is not None
        )
        cls = ClassInfo(
            name=name, module=self.summary.module, line=node.lineno, bases=bases
        )
        self.summary.classes[name] = cls
        # class-body statements run at import time → owner keeps them
        self._walk_body(
            node.body, owner=owner, class_ctx=cls, prefix=f"{name}."
        )

    def _collect_attr_types(
        self, stmt: ast.stmt, cls: ClassInfo, local_types: "_LocalTypes"
    ) -> None:
        """``self.x = Ctor(...)`` / ``self.x: T = ...`` / ``self.x = param``."""
        target: ast.expr | None = None
        value: ast.expr | None = None
        annotation: ast.expr | None = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            target, value, annotation = stmt.target, stmt.value, stmt.annotation
        if (
            not isinstance(target, ast.Attribute)
            or not isinstance(target.value, ast.Name)
            or target.value.id != "self"
        ):
            return
        attr = target.attr
        if attr in cls.attr_types:
            return
        if annotation is not None:
            resolved = self._resolve_annotation(annotation)
            if resolved is not None:
                cls.attr_types[attr] = resolved
                return
        if isinstance(value, ast.Call):
            ctor = self._resolve_dotted(value.func)
            if ctor is not None:
                cls.attr_types[attr] = ctor
                return
        if isinstance(value, ast.Name):
            inferred = local_types.type_of_name(value.id)
            if inferred is not None:
                cls.attr_types[attr] = inferred

    def _resolve_annotation(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            # string annotation: take the head identifier chain
            head = node.value.split("[")[0].split("|")[0].strip()
            return self._resolve_name_chain(head) if head else None
        if isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            left = self._resolve_annotation(node.left)
            return left if left is not None else self._resolve_annotation(node.right)
        dotted = _dotted_source(node)
        if dotted is None or dotted in ("None",):
            return None
        return self._qualify(dotted)

    def _resolve_name_chain(self, chain: str) -> str | None:
        return self._qualify(chain) if chain.replace(".", "").isidentifier() else None

    def _resolve_dotted(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Call):  # decorator factories: @timed("x")
            node = node.func
        dotted = _dotted_source(node)
        return None if dotted is None else self._qualify(dotted)

    def _qualify(self, dotted: str) -> str:
        """Import-resolve the head of a dotted chain."""
        head, _, rest = dotted.partition(".")
        origin = self.imports.get(head)
        if origin is None:
            return dotted
        return f"{origin}.{rest}" if rest else origin

    # -------------------------------------------------------------- #

    def _record_call(
        self,
        node: ast.Call,
        owner: FunctionInfo,
        calls: list[CallSite],
        intrinsic: list[tuple[str, int, str]],
        local_types: "_LocalTypes",
        region: int,
    ) -> None:
        func = node.func
        text = _safe_unparse(func)
        dotted = _dotted_source(func)
        if dotted is None:
            # methods on literals (''.join, [1].count, f"...".format) can
            # never be project code — skip silently; everything else is a
            # genuine dynamic-dispatch site worth surfacing
            base: ast.expr = func
            while isinstance(base, ast.Attribute):
                base = base.value
            if not isinstance(
                base,
                (
                    ast.Constant,
                    ast.JoinedStr,
                    ast.List,
                    ast.Tuple,
                    ast.Dict,
                    ast.Set,
                    ast.ListComp,
                    ast.SetComp,
                    ast.DictComp,
                    ast.GeneratorExp,
                ),
            ):
                self.summary.unresolved.append(
                    UnresolvedCall(
                        path=self.summary.path,
                        function=owner.id,
                        line=node.lineno,
                        call=text,
                        reason="dynamic callee expression",
                    )
                )
            return
        qualified = self._qualify(dotted)

        # intrinsic effects come straight from the resolved dotted name;
        # ambiguous method tails (.write/.flush/...) only count as
        # filesystem I/O when the receiver is IO-typed — asyncio's
        # StreamWriter.write is non-blocking and must not match
        receiver_io = False
        if "." in dotted:
            receiver = dotted.rsplit(".", 1)[0]
            rtype = local_types.type_of(receiver)
            if rtype is not None:
                tail = rtype.rsplit(".", 1)[-1]
                receiver_io = tail in ("IO", "TextIO", "BinaryIO", "BufferedWriter")
        effect = self.tables.effect_for(qualified, node, receiver_io=receiver_io)
        if effect is not None:
            intrinsic.append((effect, node.lineno, f"{text}()"))

        if qualified in _EXECUTOR_HOPS or dotted in _EXECUTOR_HOPS:
            # the wrapped callable runs on an executor thread: no edge
            return
        if qualified in _PARTIAL_WRAPPERS or dotted in _PARTIAL_WRAPPERS:
            # the partial's target runs in-thread when the partial is
            # called; conservatively charge it to the builder
            if node.args:
                inner = _dotted_source(node.args[0])
                if inner is not None:
                    calls.append(
                        self._classify(
                            node,
                            inner,
                            _safe_unparse(node.args[0]),
                            local_types,
                            region,
                        )
                    )
            return
        calls.append(self._classify(node, dotted, text, local_types, region))

    def _classify(
        self,
        node: ast.Call,
        dotted: str,
        text: str,
        local_types: "_LocalTypes",
        region: int,
    ) -> CallSite:
        head, _, rest = dotted.partition(".")
        if not rest:
            # bare name call: local def / import / builtin / local variable
            if local_types.is_local_callable_var(head):
                self.summary.unresolved.append(
                    UnresolvedCall(
                        path=self.summary.path,
                        function="",
                        line=node.lineno,
                        call=text,
                        reason="call through a function-valued local",
                    )
                )
                return CallSite(
                    line=node.lineno,
                    col=node.col_offset,
                    call=text,
                    kind=CallKind.DYNAMIC,
                    target=None,
                    region=region,
                )
            return CallSite(
                line=node.lineno,
                col=node.col_offset,
                call=text,
                kind=CallKind.DIRECT,
                target=self._qualify(head),
                region=region,
            )
        if head in ("self", "cls") and rest and "." not in rest:
            return CallSite(
                line=node.lineno,
                col=node.col_offset,
                call=text,
                kind=CallKind.SELF,
                target=None,
                method=rest,
                region=region,
            )
        # receiver.method(...): type the receiver if we can
        receiver_dotted = dotted.rsplit(".", 1)[0]
        method = dotted.rsplit(".", 1)[1]
        receiver_type = local_types.type_of(receiver_dotted)
        if receiver_type is None and head in self.imports:
            # module-attribute call: a plain DIRECT dotted target
            return CallSite(
                line=node.lineno,
                col=node.col_offset,
                call=text,
                kind=CallKind.DIRECT,
                target=self._qualify(dotted),
                region=region,
            )
        return CallSite(
            line=node.lineno,
            col=node.col_offset,
            call=text,
            kind=CallKind.METHOD,
            target=self._qualify(dotted),
            receiver_type=receiver_type,
            method=method,
            region=region,
        )


class _LocalTypes:
    """Flow-insensitive receiver typing inside one scope.

    Sources, in priority order: parameter annotations, ``AnnAssign``
    annotations, ``x = Ctor(...)`` constructor assignments.  ``self.attr``
    receivers resolve through the enclosing class's collected attribute
    types at *link* time (the extractor only records the class name).
    """

    def __init__(
        self,
        imports: dict[str, str],
        summary: ModuleSummary,
        class_ctx: ClassInfo | None,
    ):
        self.imports = imports
        self.summary = summary
        self.class_ctx = class_ctx
        self.names: dict[str, str] = {}
        self.callable_vars: set[str] = set()

    def _qualify(self, dotted: str) -> str:
        head, _, rest = dotted.partition(".")
        origin = self.imports.get(head)
        if origin is None:
            return dotted
        return f"{origin}.{rest}" if rest else origin

    def _annotation_type(self, node: ast.expr | None) -> str | None:
        if node is None:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            head = node.value.split("[")[0].split("|")[0].strip()
            return self._qualify(head) if head.replace(".", "").isidentifier() else None
        if isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            return self._annotation_type(node.left) or self._annotation_type(
                node.right
            )
        dotted = _dotted_source(node)
        if dotted is None or dotted == "None":
            return None
        resolved = self._qualify(dotted)
        if dotted in ("Callable",) or resolved.endswith("typing.Callable"):
            return None
        return resolved

    def feed_args(self, args: ast.arguments) -> None:
        for arg in [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *filter(None, (args.vararg, args.kwarg)),
        ]:
            ann = self._annotation_type(arg.annotation)
            if ann is not None:
                self.names.setdefault(arg.arg, ann)
            elif arg.annotation is not None and self._is_callable_annotation(
                arg.annotation
            ):
                self.callable_vars.add(arg.arg)
            elif arg.annotation is None and arg.arg not in ("self", "cls"):
                # an unannotated parameter used as a call target is a
                # dynamic dispatch site
                self.callable_vars.add(arg.arg)

    def _is_callable_annotation(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Subscript):
            node = node.value
        dotted = _dotted_source(node)
        return dotted is not None and dotted.split(".")[-1] == "Callable"

    def feed(self, stmt: ast.stmt) -> None:
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            ann = self._annotation_type(stmt.annotation)
            if ann is not None and isinstance(stmt.target, ast.Name):
                self.names.setdefault(stmt.target.id, ann)
                return
            target, value = stmt.target, stmt.value
        if not isinstance(target, ast.Name) or value is None:
            return
        if isinstance(value, ast.Call):
            ctor = _dotted_source(value.func)
            if ctor is not None:
                resolved = self._qualify(ctor)
                tail = resolved.split(".")[-1]
                # heuristic: Capitalised targets are constructors
                if tail[:1].isupper():
                    self.names.setdefault(target.id, resolved)
        elif isinstance(value, (ast.Lambda,)):
            self.callable_vars.add(target.id)
        elif isinstance(value, ast.Name) and value.id in self.callable_vars:
            self.callable_vars.add(target.id)

    def type_of_name(self, name: str) -> str | None:
        return self.names.get(name)

    def type_of(self, receiver: str) -> str | None:
        """Dotted receiver (``x`` or ``self.attr``) → dotted type name."""
        if "." not in receiver:
            return self.names.get(receiver)
        head, _, rest = receiver.partition(".")
        if head == "self" and self.class_ctx is not None and "." not in rest:
            return self.class_ctx.attr_types.get(rest)
        return None

    def is_local_callable_var(self, name: str) -> bool:
        return name in self.callable_vars and name not in _BUILTIN_NAMES


# --------------------------------------------------------------------- #
# effect tables shared with effects.py (extraction needs them to tag
# intrinsic sites without a second walk)


class _EffectTables:
    """Maps resolved call targets to intrinsic effect names."""

    def __init__(self) -> None:
        from repro.analysis.lint.effects import (
            CLOCK_CALLS,
            FS_CALLS,
            FS_METHODS,
            FS_PATH_METHODS,
            NETWORK_CALLS,
            PROCESS_PREFIXES,
            SLEEP_CALLS,
        )

        self.clock = CLOCK_CALLS
        self.fs = FS_CALLS
        self.fs_methods = FS_METHODS
        self.fs_path_methods = FS_PATH_METHODS
        self.network = NETWORK_CALLS
        self.process_prefixes = PROCESS_PREFIXES
        self.sleep = SLEEP_CALLS

    def effect_for(
        self, qualified: str, node: ast.Call, *, receiver_io: bool = False
    ) -> str | None:
        from repro.analysis.lint.effects import rng_effect

        if qualified in self.sleep:
            return "sleep"
        if qualified in self.clock:
            return "wall_clock"
        if qualified in self.fs:
            return "filesystem"
        if qualified in self.network:
            return "network"
        for prefix in self.process_prefixes:
            if qualified == prefix or qualified.startswith(prefix + "."):
                return "process"
        tail = qualified.split(".")[-1]
        if "." in qualified and tail in self.fs_path_methods:
            return "filesystem"
        if receiver_io and tail in self.fs_methods and "." in qualified:
            return "filesystem"
        return rng_effect(qualified, node)


def extract_module(module: SourceModule) -> ModuleSummary:
    """One file → its picklable call-graph summary."""
    return _Extractor(module, _EffectTables()).run()


# --------------------------------------------------------------------- #
# linking


class CallGraph:
    """Cross-module call graph over a set of :class:`ModuleSummary`.

    ``edges`` maps a function id to ``(callee_id, line, call_text)``
    triples, deterministically ordered.  ``unresolved`` aggregates every
    dynamic call the linker and extractors could not follow.
    """

    def __init__(
        self,
        summaries: list[ModuleSummary],
        *,
        edge_hints: Mapping[str, tuple[str, ...]] | None = None,
    ):
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}  #: "<module>.<Class>" → info
        self.unresolved: list[UnresolvedCall] = []
        self._method_index: dict[tuple[str, str], str] = {}
        self._subclasses: dict[str, list[str]] = {}
        self._module_functions: dict[tuple[str, str], str] = {}
        hints = DEFAULT_EDGE_HINTS if edge_hints is None else edge_hints

        for summary in summaries:
            for fid, fn in summary.functions.items():
                self.functions[fid] = fn
            for name, cls in summary.classes.items():
                self.classes[f"{cls.module}.{name}"] = cls
            self.unresolved.extend(summary.unresolved)
        for key, cls in self.classes.items():
            for method, fid in cls.methods.items():
                self._method_index[(key, method)] = fid
        for fid, fn in self.functions.items():
            if fn.class_name is None:
                self._module_functions[(fn.module, fn.qualname)] = fid
        # subclass closure for virtual dispatch
        for key, cls in self.classes.items():
            for base in cls.bases:
                base_key = self._resolve_class(base, cls.module)
                if base_key is not None:
                    self._subclasses.setdefault(base_key, []).append(key)

        self.edges: dict[str, tuple[tuple[str, int, str], ...]] = {}
        for fid in sorted(self.functions):
            self.edges[fid] = tuple(self._link_function(self.functions[fid]))
        self._apply_hints(hints)

    # -------------------------------------------------------------- #

    def _resolve_class(self, dotted: str, from_module: str) -> str | None:
        """A dotted class reference → the ``classes`` key, if known."""
        if dotted in self.classes:
            return dotted
        local = f"{from_module}.{dotted}"
        if local in self.classes:
            return local
        # suffix match: "CacheState" or "state.CacheState" referenced
        # from another module resolves to the unique project class
        tail = dotted.split(".")[-1]
        matches = sorted(
            key for key in self.classes if key.rsplit(".", 1)[-1] == tail
        )
        if len(matches) == 1:
            return matches[0]
        if dotted.count("."):
            narrowed = sorted(m for m in matches if m.endswith(dotted))
            if len(narrowed) == 1:
                return narrowed[0]
        return None

    def _resolve_function(self, dotted: str, from_module: str) -> str | None:
        if dotted in self.functions:
            return dotted
        local = f"{from_module}.{dotted}"
        if local in self.functions:
            return local
        # constructor: ClassName(...) → ClassName.__init__
        cls_key = self._resolve_class(dotted, from_module)
        if cls_key is not None:
            init = self._method_with_inheritance(cls_key, "__init__")
            return init
        # suffix match against module-level functions of other modules
        parts = dotted.rsplit(".", 1)
        if len(parts) == 2:
            mod, name = parts
            candidate = self._module_functions.get((mod, name))
            if candidate is not None:
                return candidate
        return None

    def _method_with_inheritance(self, cls_key: str, method: str) -> str | None:
        seen: set[str] = set()
        stack = [cls_key]
        while stack:
            key = stack.pop()
            if key in seen:
                continue
            seen.add(key)
            fid = self._method_index.get((key, method))
            if fid is not None:
                return fid
            cls = self.classes.get(key)
            if cls is None:
                continue
            for base in cls.bases:
                base_key = self._resolve_class(base, cls.module)
                if base_key is not None:
                    stack.append(base_key)
        return None

    def _virtual_targets(self, cls_key: str, method: str) -> list[str]:
        """The statically-defined method plus every subclass override."""
        out: list[str] = []
        own = self._method_with_inheritance(cls_key, method)
        if own is not None:
            out.append(own)
        stack = list(self._subclasses.get(cls_key, ()))
        seen: set[str] = set()
        while stack:
            key = stack.pop()
            if key in seen:
                continue
            seen.add(key)
            fid = self._method_index.get((key, method))
            if fid is not None:
                out.append(fid)
            stack.extend(self._subclasses.get(key, ()))
        return sorted(set(out))

    def _link_function(
        self, fn: FunctionInfo
    ) -> Iterator[tuple[str, int, str]]:
        cls_key = (
            f"{fn.module}.{fn.class_name}" if fn.class_name is not None else None
        )
        for site in fn.calls:
            if site.kind == CallKind.DYNAMIC:
                continue
            if site.kind == CallKind.SELF and site.method is not None:
                if cls_key is not None:
                    for target in self._virtual_targets(cls_key, site.method):
                        yield (target, site.line, site.call)
                continue
            if site.kind == CallKind.METHOD and site.method is not None:
                receiver = site.receiver_type
                if receiver is None and site.target is not None:
                    resolved = self._resolve_function(site.target, fn.module)
                    if resolved is not None:
                        yield (resolved, site.line, site.call)
                    continue
                if receiver is not None:
                    rec_key = self._resolve_class(receiver, fn.module)
                    if rec_key is not None:
                        for target in self._virtual_targets(
                            rec_key, site.method
                        ):
                            yield (target, site.line, site.call)
                    continue
                continue
            if site.target is not None:  # DIRECT
                resolved = self._resolve_function(site.target, fn.module)
                if resolved is not None:
                    yield (resolved, site.line, site.call)
        # decorators wrap every invocation of the function
        for dec in fn.decorators:
            resolved = self._resolve_function(dec, fn.module)
            if resolved is not None:
                yield (resolved, fn.line, f"@{dec}")

    def _apply_hints(self, hints: Mapping[str, tuple[str, ...]]) -> None:
        if not hints:
            return
        all_ids = sorted(self.functions)
        for caller_pat in sorted(hints):
            callee_pats = hints[caller_pat]
            callers = [fid for fid in all_ids if fnmatch(fid, caller_pat)]
            if not callers:
                continue
            targets: list[str] = []
            for pat in callee_pats:
                targets.extend(fid for fid in all_ids if fnmatch(fid, pat))
            for caller in callers:
                fn = self.functions[caller]
                extra = tuple(
                    (t, fn.line, f"<hint:{caller_pat}>")
                    for t in sorted(set(targets))
                    if t != caller
                )
                self.edges[caller] = self.edges.get(caller, ()) + extra

    # -------------------------------------------------------------- #

    def children_of(self, fid: str) -> list[str]:
        """Nested functions of ``fid`` (their effects fold upward)."""
        return sorted(
            child_id
            for child_id, child in self.functions.items()
            if child.parent == fid
        )
