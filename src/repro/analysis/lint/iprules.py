"""Interprocedural rules over the project call graph (RPR101–RPR103).

Unlike the file-local AST rules, these see the whole program at once:
the :class:`~repro.analysis.lint.callgraph.CallGraph` built from every
linted file, plus the :class:`~repro.analysis.lint.effects
.EffectAnalysis` labelling each function with the effects transitively
reachable from it.  Every finding carries a *witness* — the concrete
call chain from the flagged function down to the offending effect site —
so reports are actionable without re-running the analysis.

The three rule families encode the reproduction's architectural
contracts:

**RPR101 — purity contracts.**  The planning core (`repro.core.*`), the
cache policies, and the shared coordinator must be pure functions of
their inputs: the byte-identical-trace guarantee (same seed ⇒ same
decisions across batch simulator, durable runner, and HTTP service)
holds only if nothing on those paths reads a clock, draws entropy, or
touches the outside world.  Effects whose *origin site* matches the
config's ``effect_allow`` patterns are sanctioned — telemetry spans
(host timings feed metric histograms, never the trace) and the
registry's documented default seed.

**RPR102 — async-safety.**  No coroutine in the service package may
transitively reach a blocking call (file/socket I/O, ``subprocess``,
``time.sleep``) without an executor hop — the analysis already cuts
edges through ``asyncio.to_thread`` / ``run_in_executor``.  The
durability layer is origin-allowlisted by default: the service's
single-writer commit path intentionally performs its journal writes
synchronously under the coordinator lock.

**RPR103 — commit-order protocol.**  Durable execution paths must
preserve the arrivals-flush → trace-lines → journal-frame → checkpoint
order the replay oracle assumes.  The check is a small state machine
over *stage operations* (fnmatch patterns against call text), summarised
transitively per function, and required to be monotonically
non-decreasing within each straight-line region — loop bodies are their
own regions, since a loop iteration legitimately restarts the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatch
from typing import TYPE_CHECKING, Iterator

from repro.analysis.lint.callgraph import CallGraph, FunctionInfo, MODULE_BODY
from repro.analysis.lint.effects import (
    BLOCKING_EFFECTS,
    EffectAnalysis,
    witness_chain,
)
from repro.analysis.lint.framework import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.analysis.lint.config import LintConfig

__all__ = [
    "InterproceduralRule",
    "PurityContractRule",
    "AsyncSafetyRule",
    "CommitOrderRule",
    "CommitProtocol",
    "DEFAULT_COMMIT_PROTOCOL",
    "IP_RULES",
]


class InterproceduralRule:
    """Base class of whole-program rules.

    Subclasses implement :meth:`check` over the linked graph; path
    applicability (focus / allow) is still the config's job and is
    queried per flagged *function*, via its file's display path.
    """

    id: str = "RPR100"
    title: str = "abstract interprocedural rule"
    severity: str = "error"

    def check(
        self,
        graph: CallGraph,
        analysis: EffectAnalysis,
        config: "LintConfig",
    ) -> Iterator[Finding]:
        raise NotImplementedError  # pragma: no cover - abstract

    def finding(
        self,
        fn: FunctionInfo,
        message: str,
        witness: tuple[str, ...],
        *,
        line: int | None = None,
    ) -> Finding:
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=fn.path,
            line=fn.line if line is None else line,
            col=0,
            message=message,
            witness=witness,
        )


def _describe(fn: FunctionInfo) -> str:
    return "module body" if fn.qualname == MODULE_BODY else f"'{fn.qualname}'"


class PurityContractRule(InterproceduralRule):
    """RPR101: no effect may be reachable from a declared-pure root."""

    id = "RPR101"
    title = "effect reachable from declared-pure code"

    def check(
        self,
        graph: CallGraph,
        analysis: EffectAnalysis,
        config: "LintConfig",
    ) -> Iterator[Finding]:
        for fid in sorted(graph.functions):
            fn = graph.functions[fid]
            if not config.rule_applies(self.id, fn.path):
                continue
            disallowed = [
                o
                for o in analysis.origins(fid)
                if not config.origin_allowed(self.id, o.path)
            ]
            # one finding per effect kind, witnessing the first origin —
            # a chain of pure functions reaching one clock call should
            # read as one defect per function, not one per call site
            seen: set[str] = set()
            for origin in disallowed:
                if origin.effect in seen:
                    continue
                seen.add(origin.effect)
                yield self.finding(
                    fn,
                    f"{_describe(fn)} is on a declared-pure path but "
                    f"reaches a '{origin.effect}' effect "
                    f"({origin.call} at {origin.path}:{origin.line}); "
                    "pure planning code must be a function of its inputs "
                    "only — inject the dependency, route it through "
                    "telemetry, or allowlist the origin",
                    witness_chain(graph, analysis, fid, origin),
                )


class AsyncSafetyRule(InterproceduralRule):
    """RPR102: coroutines must not reach blocking calls in-thread."""

    id = "RPR102"
    title = "blocking call reachable from a coroutine"

    def check(
        self,
        graph: CallGraph,
        analysis: EffectAnalysis,
        config: "LintConfig",
    ) -> Iterator[Finding]:
        for fid in sorted(graph.functions):
            fn = graph.functions[fid]
            if not fn.is_async:
                continue
            if not config.rule_applies(self.id, fn.path):
                continue
            blocking = [
                o
                for o in analysis.origins(fid, BLOCKING_EFFECTS)
                if not config.origin_allowed(self.id, o.path)
            ]
            seen: set[str] = set()
            for origin in blocking:
                if origin.effect in seen:
                    continue
                seen.add(origin.effect)
                yield self.finding(
                    fn,
                    f"coroutine {_describe(fn)} reaches a blocking "
                    f"'{origin.effect}' call "
                    f"({origin.call} at {origin.path}:{origin.line}) "
                    "without an executor hop; the event loop stalls for "
                    "every connected client — wrap it in "
                    "asyncio.to_thread() or allowlist the origin",
                    witness_chain(graph, analysis, fid, origin),
                )


# ------------------------------------------------------------------ #
# RPR103


@dataclass(frozen=True)
class CommitProtocol:
    """The durability commit order as fnmatch patterns over call text.

    ``stages`` maps stage index (execution order) to a name and the
    patterns that recognise its operations in source.  Patterns match
    the *callee expression text* (``self.journal.append`` etc.), so the
    spec is robust to how a given file spells its receivers.
    """

    stages: tuple[tuple[str, tuple[str, ...]], ...] = (
        (
            "arrivals-flush",
            ("*._append_arrival", "_append_arrival", "*_arrivals.write",
             "*_arrivals.flush"),
        ),
        ("trace-lines", ("*core.submit",)),
        ("journal-frame", ("*journal.append",)),
        (
            "checkpoint",
            ("write_checkpoint", "*.write_checkpoint", "*._checkpoint",
             "*journal.truncate_to_checkpoint"),
        ),
    )

    def stage_of(self, call_text: str) -> int | None:
        for index, (_, patterns) in enumerate(self.stages):
            if any(fnmatch(call_text, p) for p in patterns):
                return index
        return None

    def name(self, index: int) -> str:
        return self.stages[index][0]


DEFAULT_COMMIT_PROTOCOL = CommitProtocol()


@dataclass
class _StagedOp:
    line: int
    col: int
    call: str
    #: stage performed directly, or the *max* stage a callee reaches —
    #: a call into a subroutine that runs the whole protocol acts, for
    #: ordering purposes, as its final stage
    effective: int
    direct: bool


class CommitOrderRule(InterproceduralRule):
    """RPR103: stage operations must be non-decreasing per region."""

    id = "RPR103"
    title = "durability commit-order violation"

    def __init__(self, protocol: CommitProtocol | None = None):
        self.protocol = DEFAULT_COMMIT_PROTOCOL if protocol is None else protocol

    def check(
        self,
        graph: CallGraph,
        analysis: EffectAnalysis,
        config: "LintConfig",
    ) -> Iterator[Finding]:
        summaries = self._stage_summaries(graph)
        for fid in sorted(graph.functions):
            fn = graph.functions[fid]
            if not config.rule_applies(self.id, fn.path):
                continue
            yield from self._check_function(fn, graph, summaries)

    def _stage_summaries(self, graph: CallGraph) -> dict[str, frozenset[int]]:
        """Fixpoint: stages each function performs, transitively."""
        sets: dict[str, set[int]] = {}
        for fid, fn in graph.functions.items():
            own = {
                stage
                for site in fn.calls
                if (stage := self.protocol.stage_of(site.call)) is not None
            }
            sets[fid] = own
        changed = True
        while changed:
            changed = False
            for fid in sorted(sets):
                acc = sets[fid]
                before = len(acc)
                for callee, _, _ in graph.edges.get(fid, ()):
                    acc |= sets.get(callee, set())
                if len(acc) != before:
                    changed = True
        return {fid: frozenset(s) for fid, s in sets.items()}

    def _check_function(
        self,
        fn: FunctionInfo,
        graph: CallGraph,
        summaries: dict[str, frozenset[int]],
    ) -> Iterator[Finding]:
        # callee stage summaries, addressable by the realising call site
        edge_stages: dict[tuple[int, str], set[int]] = {}
        for callee, line, call in graph.edges.get(fn.id, ()):
            edge_stages.setdefault((line, call), set()).update(
                summaries.get(callee, frozenset())
            )
        # group the function's call sites by region, in source order
        regions: dict[int, list[_StagedOp]] = {}
        for site in sorted(fn.calls, key=lambda s: (s.line, s.col)):
            direct_stage = self.protocol.stage_of(site.call)
            if direct_stage is not None:
                op = _StagedOp(
                    site.line, site.col, site.call, direct_stage, True
                )
            else:
                reached = edge_stages.get((site.line, site.call))
                if not reached:
                    continue
                op = _StagedOp(
                    site.line, site.col, site.call, max(reached), False
                )
            regions.setdefault(site.region, []).append(op)

        for region in sorted(regions):
            prev: _StagedOp | None = None
            for op in regions[region]:
                if prev is not None and op.effective < prev.effective:
                    prev_name = self.protocol.name(prev.effective)
                    op_name = self.protocol.name(op.effective)
                    via = (
                        "performs" if op.direct else "transitively reaches"
                    )
                    yield self.finding(
                        fn,
                        f"{_describe(fn)} {via} stage "
                        f"'{op_name}' ({op.call}) after stage "
                        f"'{prev_name}' ({prev.call} at line {prev.line}); "
                        "the durable commit order is arrivals-flush → "
                        "trace-lines → journal-frame → checkpoint — "
                        "replay after a crash assumes it",
                        (
                            f"{fn.id} ({fn.path}:{prev.line}) runs "
                            f"'{prev_name}' via {prev.call}",
                            f"{fn.id} ({fn.path}:{op.line}) then runs "
                            f"'{op_name}' via {op.call} — out of order",
                        ),
                        line=op.line,
                    )
                prev = op


#: shipped interprocedural rule set, in report order
IP_RULES: tuple[InterproceduralRule, ...] = (
    PurityContractRule(),
    AsyncSafetyRule(),
    CommitOrderRule(),
)
