"""Effect inference over the project call graph.

Every function node in a :class:`~repro.analysis.lint.callgraph
.CallGraph` is labelled with the set of *effects* transitively reachable
from it.  An effect is not just a tag: each one is an
:class:`EffectOrigin` carrying the exact file, line, and call text where
the effect is performed, so interprocedural findings can print a full
witness call chain from the flagged root down to the offending call.

Tracked effects:

``wall_clock``
    host-time reads (``time.time``/``perf_counter``/…, ``datetime.now``)
    — the same table RPR001 uses, shared from :mod:`.rules`.
``rng``
    non-replayable randomness: OS-entropy generators, the hidden
    module-level ``random`` / legacy ``numpy.random`` globals, and
    *unseeded* generator construction.  A literal-seeded
    ``default_rng(0)`` is deterministic and carries no effect (its
    hygiene is RPR002's file-local concern).
``filesystem``
    ``open``/``os.fsync``/``os.replace``/… plus ``.write``/``.flush``
    method calls on receivers statically typed as ``IO[...]``.
``network``
    synchronous socket / urllib / http.client APIs.  asyncio's own
    networking (``open_connection``, ``start_server``) is event-loop
    native and deliberately untracked.
``process``
    ``subprocess.*``, ``os.system``/``popen``/``exec*``/``spawn*``.
``sleep``
    ``time.sleep`` — the canonical event-loop blocker.
``global_state``
    a ``global`` declaration (module-state mutation from a function).

The blocking subset relevant to async-safety (RPR102) is
:data:`BLOCKING_EFFECTS`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable

import ast

from repro.analysis.lint.callgraph import CallGraph
from repro.analysis.lint.rules import _CLOCK_CALLS

__all__ = [
    "EFFECT_MAP_VERSION",
    "ALL_EFFECTS",
    "BLOCKING_EFFECTS",
    "EffectOrigin",
    "EffectAnalysis",
    "rng_effect",
    "witness_chain",
    "build_effect_map",
]

#: schema version of the ``--effects`` JSON document
EFFECT_MAP_VERSION = 1

ALL_EFFECTS: tuple[str, ...] = (
    "wall_clock",
    "rng",
    "filesystem",
    "network",
    "process",
    "sleep",
    "global_state",
)

#: effects that block an event loop when performed from a coroutine
BLOCKING_EFFECTS = frozenset({"filesystem", "network", "process", "sleep"})

# ------------------------------------------------------------------ #
# intrinsic tables (imported by callgraph extraction)

CLOCK_CALLS = _CLOCK_CALLS

SLEEP_CALLS = frozenset({"time.sleep"})

FS_CALLS = frozenset(
    {
        "open",
        "io.open",
        "os.fsync",
        "os.fdatasync",
        "os.open",
        "os.fdopen",
        "os.replace",
        "os.rename",
        "os.remove",
        "os.unlink",
        "os.makedirs",
        "os.mkdir",
        "os.rmdir",
        "os.truncate",
        "os.ftruncate",
        "shutil.copy",
        "shutil.copy2",
        "shutil.copyfile",
        "shutil.move",
        "shutil.rmtree",
        "tempfile.mkstemp",
        "tempfile.mkdtemp",
        "tempfile.NamedTemporaryFile",
        "tempfile.TemporaryDirectory",
    }
)

#: method tails that are filesystem I/O *only* on IO-typed receivers
#: (callgraph checks the receiver annotation before consulting this)
FS_METHODS = frozenset(
    {"write", "writelines", "flush", "read", "readline", "readlines",
     "seek", "truncate", "close"}
)

#: unambiguous pathlib-style method tails — filesystem on any receiver
FS_PATH_METHODS = frozenset(
    {"write_text", "write_bytes", "read_text", "read_bytes"}
)

NETWORK_CALLS = frozenset(
    {
        "socket.socket",
        "socket.create_connection",
        "socket.create_server",
        "socket.getaddrinfo",
        "urllib.request.urlopen",
        "http.client.HTTPConnection",
        "http.client.HTTPSConnection",
    }
)

PROCESS_PREFIXES: tuple[str, ...] = (
    "subprocess",
    "os.system",
    "os.popen",
    "os.execv",
    "os.execve",
    "os.execvp",
    "os.spawnl",
    "os.spawnv",
    "multiprocessing.Process",
)

#: module-level ``random.*`` functions driven by the hidden global RNG
_RANDOM_GLOBAL_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "randbytes",
        "getrandbits",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "betavariate",
        "expovariate",
        "gammavariate",
        "gauss",
        "lognormvariate",
        "normalvariate",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
    }
)

#: legacy numpy global-state API (``numpy.random.rand`` et al.)
_NP_LEGACY_FUNCS = frozenset(
    {
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "seed",
    }
)

_ALWAYS_RNG = frozenset(
    {
        "random.SystemRandom",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbelow",
        "secrets.choice",
        "os.urandom",
        "uuid.uuid4",
    }
)

_SEEDABLE_CTORS = frozenset({"random.Random", "numpy.random.default_rng"})


def rng_effect(qualified: str, node: ast.Call) -> str | None:
    """``"rng"`` when the resolved call is a non-replayable RNG source."""
    if qualified in _ALWAYS_RNG:
        return "rng"
    if qualified in _SEEDABLE_CTORS:
        # unseeded construction draws OS entropy; any argument is
        # treated as an explicit (replayable) seed
        return "rng" if not node.args and not node.keywords else None
    head, _, tail = qualified.rpartition(".")
    if head == "random" and tail in _RANDOM_GLOBAL_FUNCS:
        return "rng"
    if head == "numpy.random" and tail in _NP_LEGACY_FUNCS:
        return "rng"
    return None


# ------------------------------------------------------------------ #
# inference


@dataclass(frozen=True, order=True)
class EffectOrigin:
    """The concrete site where an effect is performed.

    Ordering is lexicographic over the fields, giving deterministic
    output everywhere origin sets are sorted.
    """

    effect: str
    path: str
    line: int
    call: str
    owner: str  #: function id whose body performs the effect


class EffectAnalysis:
    """Fixpoint propagation of effect origins over the call graph.

    ``effects[fid]`` is the frozenset of every :class:`EffectOrigin`
    reachable from function ``fid`` — its own intrinsic sites, those of
    everything it calls (transitively, through virtual dispatch and edge
    hints), and those of its nested functions (closures run in the
    parent's dynamic extent for our purposes).
    """

    def __init__(self, graph: CallGraph):
        self.graph = graph
        self.effects: dict[str, frozenset[EffectOrigin]] = {}
        self._edges: dict[str, tuple[str, ...]] = {}
        self._run()

    def _run(self) -> None:
        graph = self.graph
        sets: dict[str, set[EffectOrigin]] = {}
        edges: dict[str, set[str]] = {}
        for fid in graph.functions:
            fn = graph.functions[fid]
            sets[fid] = {
                EffectOrigin(
                    effect=eff, path=fn.path, line=line, call=call, owner=fid
                )
                for (eff, line, call) in fn.intrinsic
            }
            edges[fid] = {callee for (callee, _, _) in graph.edges.get(fid, ())}
        # nested defs: fold the child into the parent
        for fid, fn in graph.functions.items():
            if fn.parent is not None and fn.parent in edges:
                edges[fn.parent].add(fid)
        self._edges = {fid: tuple(sorted(out)) for fid, out in edges.items()}

        changed = True
        while changed:
            changed = False
            for fid in sorted(sets):
                acc = sets[fid]
                before = len(acc)
                for callee in edges[fid]:
                    callee_set = sets.get(callee)
                    if callee_set:
                        acc |= callee_set
                if len(acc) != before:
                    changed = True
        self.effects = {fid: frozenset(s) for fid, s in sets.items()}

    # -------------------------------------------------------------- #

    def effect_names(self, fid: str) -> tuple[str, ...]:
        return tuple(sorted({o.effect for o in self.effects.get(fid, ())}))

    def origins(
        self, fid: str, effects: Iterable[str] | None = None
    ) -> tuple[EffectOrigin, ...]:
        wanted = None if effects is None else set(effects)
        return tuple(
            sorted(
                o
                for o in self.effects.get(fid, ())
                if wanted is None or o.effect in wanted
            )
        )

    def successors(self, fid: str) -> tuple[str, ...]:
        """Outgoing edges including the nested-def fold (deterministic)."""
        return self._edges.get(fid, ())


def witness_chain(
    graph: CallGraph, analysis: EffectAnalysis, root: str, origin: EffectOrigin
) -> tuple[str, ...]:
    """Shortest call chain from ``root`` to the origin's owning function.

    Returns human-readable hop strings; the last entry is always the
    effect site itself.  BFS over deterministically-sorted successors, so
    the same tree yields the same witness in every run and process count.
    """
    target = origin.owner
    parent: dict[str, str | None] = {root: None}
    if root != target:
        queue: deque[str] = deque([root])
        while queue:
            fid = queue.popleft()
            if fid == target:
                break
            for succ in analysis.successors(fid):
                if succ not in parent:
                    parent[succ] = fid
                    queue.append(succ)
    chain: list[str] = []
    if target in parent:
        # reconstruct root → target
        path: list[str] = []
        cursor: str | None = target
        while cursor is not None:
            path.append(cursor)
            cursor = parent[cursor]
        path.reverse()
        for caller, callee in zip(path, path[1:]):
            line, call = _edge_site(graph, caller, callee)
            loc = graph.functions[caller].path
            chain.append(f"{caller} ({loc}:{line}) calls {call}")
    site = f"{origin.owner} performs {origin.call} "
    site += f"[{origin.effect}] at {origin.path}:{origin.line}"
    chain.append(site)
    return tuple(chain)


def _edge_site(graph: CallGraph, caller: str, callee: str) -> tuple[int, str]:
    """Earliest call site realising the ``caller → callee`` edge."""
    best: tuple[int, str] | None = None
    for target, line, call in graph.edges.get(caller, ()):
        if target == callee and (best is None or line < best[0]):
            best = (line, call)
    if best is not None:
        return best
    # nested-def fold: the child has no explicit call site
    child = graph.functions.get(callee)
    if child is not None and child.parent == caller:
        return (child.line, f"<nested def {child.qualname.rsplit('.', 1)[-1]}>")
    return (graph.functions[caller].line, f"<edge to {callee}>")


# ------------------------------------------------------------------ #
# effect map


def build_effect_map(
    graph: CallGraph, analysis: EffectAnalysis
) -> dict[str, object]:
    """The versioned ``--effects`` JSON document (deterministic)."""
    functions: dict[str, dict[str, object]] = {}
    for fid in sorted(graph.functions):
        fn = graph.functions[fid]
        names = analysis.effect_names(fid)
        entry: dict[str, object] = {
            "path": fn.path,
            "line": fn.line,
            "async": fn.is_async,
            "effects": list(names),
        }
        if names:
            entry["origins"] = [
                {
                    "effect": o.effect,
                    "path": o.path,
                    "line": o.line,
                    "call": o.call,
                    "owner": o.owner,
                }
                for o in analysis.origins(fid)
            ]
        functions[fid] = entry
    unresolved = [
        u.as_dict()
        for u in sorted(
            graph.unresolved, key=lambda u: (u.path, u.line, u.call)
        )
    ]
    return {
        "version": EFFECT_MAP_VERSION,
        "functions": functions,
        "unresolved": unresolved,
    }
