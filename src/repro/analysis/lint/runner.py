"""The lint driver: path collection, rule dispatch, suppression filtering.

:func:`lint_paths` is the single entry point used by the CLI and the
tests.  It accepts files and directories (directories are walked
recursively for ``*.py``, skipping ``__pycache__`` and hidden dirs),
runs every enabled AST rule on every file, applies inline suppressions,
appends the repo-level RPR005 drift findings, and returns a
deterministically sorted finding list.

Operator errors — a path that does not exist, source that is not UTF-8
or does not parse — raise :class:`~repro.errors.LintError` (the CLI turns
that into a clean ``error: …`` exit), while rule violations are returned
as data, never raised.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.lint.config import LintConfig
from repro.analysis.lint.drift import RULE_ID as DRIFT_RULE_ID
from repro.analysis.lint.drift import check_drift
from repro.analysis.lint.framework import Finding, Rule, SourceModule
from repro.analysis.lint.rules import AST_RULES
from repro.errors import LintError

__all__ = ["LintResult", "collect_files", "lint_paths"]

#: id of the meta-rule enforcing justified suppressions
SUPPRESSION_RULE_ID = "RPR900"


@dataclass(frozen=True)
class LintResult:
    """Outcome of one lint run."""

    findings: tuple[Finding, ...]
    files_checked: int
    suppressed: int  #: findings silenced by inline ``# repro: allow[...]``

    @property
    def ok(self) -> bool:
        return not self.findings


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Raises :class:`LintError` for a path that does not exist or a file
    argument that is not Python source.
    """
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(
                p
                for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
                and not any(part.startswith(".") for part in p.parts[:-1])
            )
        elif path.is_file():
            if path.suffix != ".py":
                raise LintError(f"not a Python source file: {path}")
            out.append(path)
        else:
            raise LintError(f"no such file or directory: {path}")
    # de-duplicate while keeping the sorted-per-argument order stable
    seen: set[Path] = set()
    unique: list[Path] = []
    for path in out:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def _suppression_findings(module: SourceModule) -> Iterable[Finding]:
    """RPR900: every ``# repro: allow[...]`` must say *why*."""
    for supp in module.suppressions.values():
        if not supp.reason:
            yield Finding(
                rule=SUPPRESSION_RULE_ID,
                severity="error",
                path=module.display_path,
                line=supp.line,
                col=0,
                message=(
                    f"suppression of {', '.join(sorted(supp.rules))} without "
                    "a justification; append the reason after the bracket, "
                    "e.g. '# repro: allow[RPR003] order feeds a sum only'"
                ),
            )


def lint_paths(
    paths: Sequence[str | Path],
    config: LintConfig | None = None,
    *,
    rules: Sequence[Rule] | None = None,
    drift_root: Path | None = None,
) -> LintResult:
    """Lint files/directories and return every surviving finding.

    ``rules`` overrides the shipped AST rule set (tests use this);
    ``drift_root`` pins the repository root the RPR005 doc checks read.
    """
    if config is None:
        config = LintConfig()
    active_rules = AST_RULES if rules is None else tuple(rules)

    findings: list[Finding] = []
    suppressed = 0
    files = collect_files(paths)
    for path in files:
        module = SourceModule.load(path, path.as_posix())
        for rule in active_rules:
            if not config.rule_applies(rule.id, module.display_path):
                continue
            for finding in rule.check(module, config):
                if module.suppressed(finding) is not None:
                    suppressed += 1
                else:
                    findings.append(finding)
        if config.rule_enabled(SUPPRESSION_RULE_ID):
            findings.extend(_suppression_findings(module))

    if config.rule_enabled(DRIFT_RULE_ID) and files:
        findings.extend(check_drift(root=drift_root))

    findings.sort(key=Finding.sort_key)
    return LintResult(
        findings=tuple(findings),
        files_checked=len(files),
        suppressed=suppressed,
    )
