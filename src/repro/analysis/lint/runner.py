"""The lint driver: path collection, rule dispatch, suppression filtering.

:func:`lint_paths` is the single entry point used by the CLI and the
tests.  It accepts files and directories (directories are walked
recursively for ``*.py``, skipping ``__pycache__`` and hidden dirs),
runs every enabled AST rule on every file, applies inline suppressions,
runs the whole-program effect rules (RPR101–103) over the project call
graph, appends the repo-level RPR005 drift findings, and returns a
deterministically sorted finding list.

The per-file stage is embarrassingly parallel: ``jobs > 1`` fans file
parsing and AST-rule checking out to a process pool.  Each worker
returns a picklable :class:`FileLintResult` — surviving findings, the
file's call-graph :class:`~repro.analysis.lint.callgraph.ModuleSummary`,
and a precomputed *suppression coverage* map — so the parent can link
the call graph and apply suppressions to interprocedural findings
without re-reading any source.  Files are dispatched and merged in
sorted path order, making parallel output byte-identical to serial.

Operator errors — a path that does not exist, source that is not UTF-8
or does not parse — raise :class:`~repro.errors.LintError` (the CLI turns
that into a clean ``error: …`` exit), while rule violations are returned
as data, never raised.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.lint.callgraph import CallGraph, ModuleSummary, extract_module
from repro.analysis.lint.config import LintConfig
from repro.analysis.lint.drift import RULE_ID as DRIFT_RULE_ID
from repro.analysis.lint.drift import check_drift
from repro.analysis.lint.effects import EffectAnalysis, build_effect_map
from repro.analysis.lint.framework import (
    Finding,
    Rule,
    SourceModule,
    Suppression,
)
from repro.analysis.lint.iprules import IP_RULES, InterproceduralRule
from repro.analysis.lint.rules import AST_RULES
from repro.errors import LintError

__all__ = ["LintResult", "FileLintResult", "collect_files", "lint_paths"]

#: id of the meta-rule enforcing justified suppressions
SUPPRESSION_RULE_ID = "RPR900"


@dataclass(frozen=True)
class LintResult:
    """Outcome of one lint run."""

    findings: tuple[Finding, ...]
    files_checked: int
    suppressed: int  #: findings silenced by inline ``# repro: allow[...]``
    effect_map: dict[str, object] | None = None  #: ``--effects`` document

    @property
    def ok(self) -> bool:
        return not self.findings


@dataclass
class FileLintResult:
    """Everything one worker produces for one file (picklable)."""

    display_path: str
    findings: tuple[Finding, ...]  #: post-suppression AST-rule findings
    suppressed: int
    #: line → suppressions covering that line (own line plus the first
    #: code line below a comment-block suppression) — lets the parent
    #: apply ``# repro: allow[...]`` to interprocedural findings without
    #: holding the source text
    coverage: dict[int, tuple[Suppression, ...]] = field(default_factory=dict)
    summary: ModuleSummary | None = None


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Raises :class:`LintError` for a path that does not exist or a file
    argument that is not Python source.
    """
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(
                p
                for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
                and not any(part.startswith(".") for part in p.parts[:-1])
            )
        elif path.is_file():
            if path.suffix != ".py":
                raise LintError(f"not a Python source file: {path}")
            out.append(path)
        else:
            raise LintError(f"no such file or directory: {path}")
    # de-duplicate while keeping the sorted-per-argument order stable
    seen: set[Path] = set()
    unique: list[Path] = []
    for path in out:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def _suppression_findings(module: SourceModule) -> Iterable[Finding]:
    """RPR900: every ``# repro: allow[...]`` must say *why*."""
    for supp in module.suppressions.values():
        if not supp.reason:
            yield Finding(
                rule=SUPPRESSION_RULE_ID,
                severity="error",
                path=module.display_path,
                line=supp.line,
                col=0,
                message=(
                    f"suppression of {', '.join(sorted(supp.rules))} without "
                    "a justification; append the reason after the bracket, "
                    "e.g. '# repro: allow[RPR003] order feeds a sum only'"
                ),
            )


def _suppression_coverage(
    module: SourceModule,
) -> dict[int, tuple[Suppression, ...]]:
    """Lines each suppression covers, mirroring ``SourceModule.suppressed``.

    A suppression covers its own line; when it sits on a comment-only
    line, it also covers the first code line below the contiguous
    comment block (multi-line justifications included).
    """
    coverage: dict[int, list[Suppression]] = {}
    total_lines = len(module.text.splitlines())
    for supp in module.suppressions.values():
        coverage.setdefault(supp.line, []).append(supp)
        if module._is_comment_line(supp.line):
            below = supp.line + 1
            while module._is_comment_line(below):
                below += 1
            if below <= total_lines:
                coverage.setdefault(below, []).append(supp)
    return {line: tuple(supps) for line, supps in coverage.items()}


def _covered(result: FileLintResult, finding: Finding) -> bool:
    return any(
        finding.rule in supp.rules
        for supp in result.coverage.get(finding.line, ())
    )


def _lint_one_file(
    args: tuple[str, LintConfig, tuple[Rule, ...], bool],
) -> FileLintResult:
    """Worker: parse one file, run AST rules, pre-apply suppressions.

    Takes a single argument tuple so ``ProcessPoolExecutor.map`` can
    dispatch it directly; everything in and out is picklable.
    """
    path_str, config, active_rules, need_summary = args
    path = Path(path_str)
    module = SourceModule.load(path, path.as_posix())
    findings: list[Finding] = []
    suppressed = 0
    for rule in active_rules:
        if not config.rule_applies(rule.id, module.display_path):
            continue
        for finding in rule.check(module, config):
            if module.suppressed(finding) is not None:
                suppressed += 1
            else:
                findings.append(finding)
    if config.rule_enabled(SUPPRESSION_RULE_ID):
        findings.extend(_suppression_findings(module))
    return FileLintResult(
        display_path=module.display_path,
        findings=tuple(findings),
        suppressed=suppressed,
        coverage=_suppression_coverage(module),
        summary=extract_module(module) if need_summary else None,
    )


def lint_paths(
    paths: Sequence[str | Path],
    config: LintConfig | None = None,
    *,
    rules: Sequence[Rule] | None = None,
    ip_rules: Sequence[InterproceduralRule] | None = None,
    drift_root: Path | None = None,
    jobs: int = 1,
    collect_effects: bool = False,
) -> LintResult:
    """Lint files/directories and return every surviving finding.

    ``rules`` / ``ip_rules`` override the shipped rule sets (tests use
    this); ``drift_root`` pins the repository root the RPR005 doc checks
    read; ``jobs > 1`` parallelises the per-file stage with output
    identical to serial; ``collect_effects`` attaches the versioned
    effect map to the result even when no rule fires.
    """
    if config is None:
        config = LintConfig()
    if jobs < 1:
        raise LintError(f"--jobs must be >= 1, got {jobs}")
    active_rules = AST_RULES if rules is None else tuple(rules)
    active_ip_rules = IP_RULES if ip_rules is None else tuple(ip_rules)

    files = collect_files(paths)
    want_graph = collect_effects or any(
        config.rule_enabled(rule.id) for rule in active_ip_rules
    )
    work = [
        (path.as_posix(), config, active_rules, want_graph) for path in files
    ]
    if jobs == 1 or len(files) <= 1:
        per_file = [_lint_one_file(item) for item in work]
    else:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(jobs, len(files))
        ) as pool:
            # map() preserves input order → deterministic merge
            per_file = list(pool.map(_lint_one_file, work, chunksize=4))

    findings: list[Finding] = []
    suppressed = 0
    for result in per_file:
        findings.extend(result.findings)
        suppressed += result.suppressed

    effect_map: dict[str, object] | None = None
    if want_graph and per_file:
        summaries = [r.summary for r in per_file if r.summary is not None]
        graph = CallGraph(summaries)
        analysis = EffectAnalysis(graph)
        by_path = {r.display_path: r for r in per_file}
        for rule in active_ip_rules:
            if not config.rule_enabled(rule.id):
                continue
            for finding in rule.check(graph, analysis, config):
                holder = by_path.get(finding.path)
                if holder is not None and _covered(holder, finding):
                    suppressed += 1
                else:
                    findings.append(finding)
        if collect_effects:
            effect_map = build_effect_map(graph, analysis)

    if config.rule_enabled(DRIFT_RULE_ID) and files:
        findings.extend(check_drift(root=drift_root))

    findings.sort(key=Finding.sort_key)
    return LintResult(
        findings=tuple(findings),
        files_checked=len(files),
        suppressed=suppressed,
        effect_map=effect_map,
    )
