"""Determinism & conformance linter for the reproduction (``repro-fbc lint``).

Static checks for the invariants the differential test suite can only
verify at runtime: no wall-clock time in simulation paths (RPR001), no
unseeded or global RNG (RPR002), no set-iteration tie-breaks in the
eviction/selection layers (RPR003), all exceptions rooted in
:mod:`repro.errors` (RPR004), and cross-artifact consistency between the
event schema, the policy registry and the docs (RPR005).
"""

from repro.analysis.lint.config import ALL_RULE_IDS, LintConfig
from repro.analysis.lint.drift import (
    check_doc_references,
    check_drift,
    check_event_schema,
    check_rule_docs,
    check_service_routes,
)
from repro.analysis.lint.framework import Finding, Rule, SourceModule
from repro.analysis.lint.reporting import format_json, format_text
from repro.analysis.lint.rules import AST_RULES
from repro.analysis.lint.runner import LintResult, collect_files, lint_paths

__all__ = [
    "ALL_RULE_IDS",
    "AST_RULES",
    "Finding",
    "LintConfig",
    "LintResult",
    "Rule",
    "SourceModule",
    "check_doc_references",
    "check_drift",
    "check_event_schema",
    "check_rule_docs",
    "check_service_routes",
    "collect_files",
    "format_json",
    "format_text",
    "lint_paths",
]
