"""Finding output formats: human text and machine JSON.

The JSON shape is versioned and stable — CI uploads it as an artifact,
so downstream tooling may parse it::

    {
      "version": 1,
      "total": 2,
      "counts": {"RPR003": 2},
      "findings": [{"rule": ..., "severity": ..., "path": ...,
                    "line": ..., "col": ..., "message": ...}, ...]
    }

Interprocedural findings (RPR101–103) additionally carry a ``witness``
key — the call chain from the flagged function to the effect site — in
JSON, and indented ``witness:`` continuation lines in text.  File-local
findings keep the exact version-1 key set.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Sequence

from repro.analysis.lint.framework import Finding

__all__ = ["format_text", "format_json", "JSON_REPORT_VERSION"]

JSON_REPORT_VERSION = 1


def format_text(findings: Sequence[Finding], *, files_checked: int = 0) -> str:
    """One line per finding plus a summary tail."""
    lines = [f.render() for f in findings]
    if findings:
        counts = Counter(f.rule for f in findings)
        breakdown = ", ".join(
            f"{rule}: {n}" for rule, n in sorted(counts.items())
        )
        lines.append(
            f"{len(findings)} finding{'s' if len(findings) != 1 else ''} "
            f"({breakdown}) in {files_checked} file"
            f"{'s' if files_checked != 1 else ''}"
        )
    else:
        lines.append(
            f"clean: 0 findings in {files_checked} "
            f"file{'s' if files_checked != 1 else ''}"
        )
    return "\n".join(lines)


def format_json(findings: Sequence[Finding], *, files_checked: int = 0) -> str:
    """The versioned machine-readable report (sorted, newline-terminated)."""
    counts = Counter(f.rule for f in findings)
    payload = {
        "version": JSON_REPORT_VERSION,
        "files_checked": files_checked,
        "total": len(findings),
        "counts": {rule: counts[rule] for rule in sorted(counts)},
        "findings": [f.as_dict() for f in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=False)
