"""Linter configuration: rule selection and per-rule path scoping.

Two path mechanisms exist because the rules have two different shapes:

* **focus patterns** — a rule only *applies* under certain directories
  (RPR003's set-iteration hazard only matters where a tie-break feeds a
  simulation decision: ``cache/``, ``core/``, ``sim/``);
* **allow patterns** — a rule applies everywhere *except* files whose
  whole job is the flagged construct (the profiling/bench modules hold
  the package's only legitimate wall clocks; the policy registry holds
  the documented default seed for the ``random`` policy).

Both match with :func:`fnmatch.fnmatch` against the posix display path,
so patterns like ``*/telemetry/recorder.py`` work for absolute and
repo-relative invocations alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch

from repro.errors import LintError

__all__ = [
    "LintConfig",
    "DEFAULT_FOCUS",
    "DEFAULT_ALLOW",
    "DEFAULT_EFFECT_ALLOW",
    "ALL_RULE_IDS",
]

#: every rule id the linter knows, in report order (RPR101–103 are the
#: whole-program effect rules; RPR900 is the meta-rule flagging
#: suppressions that carry no justification text)
ALL_RULE_IDS: tuple[str, ...] = (
    "RPR001",
    "RPR002",
    "RPR003",
    "RPR004",
    "RPR005",
    "RPR101",
    "RPR102",
    "RPR103",
    "RPR900",
)

#: rule id -> patterns a file must match for the rule to apply at all.
#: The interprocedural rules anchor on ``*/repro/...`` so that test
#: fixtures living under ``tmp/cache/mod.py`` do not accidentally become
#: declared-pure roots — whole-program contracts attach to the package,
#: not to any directory that happens to share a name.
DEFAULT_FOCUS: dict[str, tuple[str, ...]] = {
    # set/dict iteration order only becomes a determinism hazard where it
    # can tie-break an eviction or selection decision
    "RPR003": ("*/cache/*", "*/core/*", "*/sim/*"),
    # declared-pure roots: the planning core, every cache policy, and the
    # shared coordinator that drives all three execution modes
    "RPR101": (
        "*/repro/core/*",
        "*/repro/cache/*",
        "*/repro/sim/coordinator.py",
    ),
    # async-safety only concerns coroutine code in the online service
    "RPR102": ("*/repro/service/*",),
    # the commit-order protocol binds the durable execution paths
    "RPR103": ("*/repro/durability/*", "*/repro/service/state.py"),
}

#: rule id -> patterns exempting a file from the rule
DEFAULT_ALLOW: dict[str, tuple[str, ...]] = {
    # the only sanctioned wall clocks: span profiling (host timings go to
    # metric histograms, never the event trace), the bench harness, and
    # the online service's latency instrumentation (decision timings and
    # loadgen pacing are host-side observations, never trace content)
    "RPR001": (
        "*/telemetry/recorder.py",
        "*/telemetry/profiling.py",
        "*/telemetry/tracing.py",
        "*/experiments/bench.py",
        "*/service/state.py",
        "*/service/loadgen.py",
    ),
    # the registry owns the documented default seed of the random policy;
    # utils/rng.py is the one place deriving generators from raw seeds
    "RPR002": (
        "*/cache/registry.py",
        "*/utils/rng.py",
    ),
}

#: rule id -> patterns exempting an *effect origin site* (the file where
#: the effect is actually performed) rather than the flagged file.  This
#: is the interprocedural twin of ``DEFAULT_ALLOW``: a pure root may
#: reach a telemetry span (host timings feed metric histograms, never
#: the event trace) without breaking its contract, and the service's
#: async handlers intentionally perform their durable writes
#: synchronously under the coordinator lock — the single-writer design
#: PR 7 adopted — so blocking effects originating in the durability
#: layer are sanctioned for RPR102.
DEFAULT_EFFECT_ALLOW: dict[str, tuple[str, ...]] = {
    "RPR101": (
        "*/repro/telemetry/*",
        "*/repro/cache/registry.py",
        "*/repro/utils/rng.py",
    ),
    "RPR102": (
        "*/repro/durability/*",
        "*/repro/service/state.py",
        "*/repro/telemetry/*",
    ),
}


def _validate_rule_ids(ids: frozenset[str]) -> None:
    unknown = ids - set(ALL_RULE_IDS)
    if unknown:
        known = ", ".join(ALL_RULE_IDS)
        raise LintError(
            f"unknown rule id(s) {sorted(unknown)}; known rules: {known}"
        )


@dataclass(frozen=True)
class LintConfig:
    """Immutable linter configuration.

    ``select`` of ``None`` means "all rules"; ``ignore`` always wins over
    ``select``.  ``focus`` / ``allow`` default to the repo's shipped
    scoping and can be overridden wholesale (tests do this to point rules
    at fixture files).
    """

    select: frozenset[str] | None = None
    ignore: frozenset[str] = frozenset()
    focus: dict[str, tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_FOCUS)
    )
    allow: dict[str, tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_ALLOW)
    )
    effect_allow: dict[str, tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_EFFECT_ALLOW)
    )

    def __post_init__(self) -> None:
        if self.select is not None:
            _validate_rule_ids(self.select)
        _validate_rule_ids(frozenset(self.ignore))

    @classmethod
    def from_cli(
        cls,
        select: list[str] | None = None,
        ignore: list[str] | None = None,
    ) -> "LintConfig":
        """Build a config from repeated ``--select`` / ``--ignore`` flags."""
        return cls(
            select=frozenset(s.upper() for s in select) if select else None,
            ignore=frozenset(i.upper() for i in ignore or ()),
        )

    # ------------------------------------------------------------------ #

    def rule_enabled(self, rule_id: str) -> bool:
        if rule_id in self.ignore:
            return False
        if self.select is not None:
            return rule_id in self.select
        return True

    def rule_applies(self, rule_id: str, display_path: str) -> bool:
        """Whether ``rule_id`` should run on the file at ``display_path``."""
        if not self.rule_enabled(rule_id):
            return False
        focus = self.focus.get(rule_id)
        if focus is not None and not any(fnmatch(display_path, p) for p in focus):
            return False
        return not any(
            fnmatch(display_path, p) for p in self.allow.get(rule_id, ())
        )

    def origin_allowed(self, rule_id: str, origin_path: str) -> bool:
        """Whether an effect *originating* at ``origin_path`` is sanctioned
        for ``rule_id`` (interprocedural rules only)."""
        return any(
            fnmatch(origin_path, p)
            for p in self.effect_allow.get(rule_id, ())
        )
