"""The determinism rule set (RPR001–RPR004).

Every rule is grounded in a concrete failure mode of this reproduction:

RPR001
    Wall-clock / host time in a simulation path.  Host time differs
    across runs and machines, so any value derived from it breaks the
    same-seed ⇒ byte-identical-trace contract (simulated time ``t`` is
    fine; it is a deterministic function of the seed).
RPR002
    Unseeded or module-level RNG.  ``np.random.<fn>`` and stdlib
    ``random.<fn>`` mutate hidden global state shared across components;
    ``default_rng()`` without a seed draws OS entropy; a hard-coded
    literal seed hides the stream from the experiment's seed plumbing.
RPR003
    Iteration over a set (or min/max/next-iter/pop on one) in the
    eviction/selection layers.  Set order is hash-seed dependent, so a
    tie-break taken from it silently changes plans between processes —
    the exact hazard PR 2–4 guard against differentially at runtime.
RPR004
    Exceptions outside the :mod:`repro.errors` hierarchy, and handlers
    that swallow everything.  Callers contractually catch
    :class:`~repro.errors.ReproError`; a stray ``ValueError`` escapes
    that net, and a silent ``except Exception`` can hide the very
    nondeterminism the other rules exist to surface.
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterator

from repro.analysis.lint.config import LintConfig
from repro.analysis.lint.framework import Finding, Rule, SourceModule

__all__ = [
    "WallClockRule",
    "UnseededRngRule",
    "SetIterationRule",
    "ExceptionHygieneRule",
    "AST_RULES",
]


# --------------------------------------------------------------------- #
# shared helpers


def _import_map(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted origin they were imported from.

    ``import numpy as np`` → ``{"np": "numpy"}``;
    ``from time import perf_counter as pc`` → ``{"pc": "time.perf_counter"}``.
    """
    out: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                out[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return out


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` attribute chains as a dotted string (else ``None``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _resolve_call(func: ast.expr, imports: dict[str, str]) -> str | None:
    """Fully-qualified dotted name of a call target, import-aware."""
    dotted = _dotted(func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    origin = imports.get(head)
    if origin is None:
        return dotted
    return f"{origin}.{rest}" if rest else origin


def _walk_scopes(
    tree: ast.Module,
) -> Iterator[tuple[ast.AST, list[ast.stmt]]]:
    """Yield (scope node, scope body) for the module and every function."""
    yield tree, tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.body


def _walk_scope_body(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk a scope body without descending into nested function scopes.

    Unlike ``ast.walk``, children of a nested ``def`` are pruned — those
    statements belong to the inner scope, which :func:`_walk_scopes`
    yields separately.
    """
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


# --------------------------------------------------------------------- #
# RPR001 — wall-clock / host time


_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "time.clock_gettime_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class WallClockRule(Rule):
    id = "RPR001"
    title = "wall-clock/host time outside the profiling allowlist"

    def check(self, module: SourceModule, config: LintConfig) -> Iterator[Finding]:
        imports = _import_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = _resolve_call(node.func, imports)
            if resolved in _CLOCK_CALLS:
                yield self.finding(
                    module,
                    node,
                    f"host-time call {resolved}() in a simulation path; "
                    "host time is not a function of the seed — route timings "
                    "through telemetry profiling spans or allowlist the file",
                )


# --------------------------------------------------------------------- #
# RPR002 — unseeded / module-level RNG


#: numpy.random attributes that are *not* the legacy global-state API
_NP_RANDOM_OK = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)


class UnseededRngRule(Rule):
    id = "RPR002"
    title = "unseeded or module-level RNG"

    def check(self, module: SourceModule, config: LintConfig) -> Iterator[Finding]:
        imports = _import_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = _resolve_call(node.func, imports)
            if resolved is None:
                continue
            if resolved.startswith("numpy.random."):
                attr = resolved.removeprefix("numpy.random.")
                if attr == "default_rng":
                    yield from self._check_default_rng(module, node)
                elif "." not in attr and attr not in _NP_RANDOM_OK:
                    yield self.finding(
                        module,
                        node,
                        f"legacy module-level RNG numpy.random.{attr}(); "
                        "global generator state is shared across components — "
                        "take an explicit numpy.random.Generator instead",
                    )
            elif resolved == "random.Random":
                # an explicitly seeded instance is fine; it is the hidden
                # module-level generator (and OS-entropy construction)
                # that breaks replay
                yield from self._check_default_rng(module, node)
            elif resolved == "random.SystemRandom":
                yield self.finding(
                    module,
                    node,
                    "random.SystemRandom() draws OS entropy and can never "
                    "be replayed; use a seeded generator",
                )
            elif resolved.startswith("random.") and resolved.count(".") == 1:
                attr = resolved.removeprefix("random.")
                yield self.finding(
                    module,
                    node,
                    f"stdlib random.{attr}() uses hidden module state; "
                    "take an explicit seeded numpy.random.Generator instead",
                )

    def _check_default_rng(
        self, module: SourceModule, node: ast.Call
    ) -> Iterator[Finding]:
        name = _dotted(node.func) or "default_rng"
        name = name.split(".")[-1]
        if not node.args and not node.keywords:
            yield self.finding(
                module,
                node,
                f"{name}() without a seed draws OS entropy and is "
                "unreproducible; pass a seed derived from the experiment seed",
            )
            return
        seed = node.args[0] if node.args else node.keywords[0].value
        if isinstance(seed, ast.Constant) and seed.value is not None:
            yield self.finding(
                module,
                node,
                f"{name}({seed.value!r}) hard-codes the seed, hiding "
                "this stream from the experiment's seed plumbing; accept a "
                "seed/rng parameter or derive one via repro.utils.rng",
            )


# --------------------------------------------------------------------- #
# RPR003 — set iteration order as a tie-break hazard


#: methods that return sets in this codebase / the stdlib set API
_SET_RETURNING_METHODS = frozenset(
    {
        "intersection",
        "union",
        "difference",
        "symmetric_difference",
        # repo-specific: CacheState.missing / FileBundle.missing_from /
        # CacheState.pinned_files all return frozensets
        "missing",
        "missing_from",
        "pinned_files",
    }
)

_SET_ANNOTATIONS = frozenset({"set", "frozenset", "Set", "FrozenSet", "AbstractSet"})

_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _annotation_is_set(node: ast.expr | None) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Subscript):  # set[FileId], frozenset[str], ...
        node = node.value
    dotted = _dotted(node)
    if dotted is None:
        return False
    return dotted.split(".")[-1] in _SET_ANNOTATIONS


class _SetScope:
    """Flow-insensitive set-typedness of local names within one scope."""

    def __init__(self, scope: ast.AST, body: list[ast.stmt]):
        self.names: set[str] = set()
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope.args
            for arg in [
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
                *filter(None, (args.vararg, args.kwarg)),
            ]:
                if _annotation_is_set(arg.annotation):
                    self.names.add(arg.arg)
        # iterate to a fixpoint so chains like  a = {…}; b = a | c  resolve
        # regardless of statement order (bounded by the number of names)
        for _ in range(len(body) + 1):
            grew = False
            for stmt in self._statements(body):
                grew |= self._collect(stmt)
            if not grew:
                break

    def _statements(self, body: list[ast.stmt]) -> Iterator[ast.stmt]:
        for node in _walk_scope_body(body):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                yield node

    def _collect(self, stmt: ast.stmt) -> bool:
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            target, value = stmt.target, stmt.value
            if _annotation_is_set(stmt.annotation) and isinstance(
                target, ast.Name
            ):
                if target.id not in self.names:
                    self.names.add(target.id)
                    return True
                return False
        elif isinstance(stmt, ast.AugAssign):
            target, value = stmt.target, stmt.value
        if (
            isinstance(target, ast.Name)
            and value is not None
            and target.id not in self.names
            and self.is_set(value)
        ):
            self.names.add(target.id)
            return True
        return False

    def is_set(self, node: ast.expr) -> bool:
        """Whether ``node`` is (syntactically recognisable as) a set."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in (
                "set",
                "frozenset",
            ):
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_RETURNING_METHODS
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
            return self.is_set(node.left) or self.is_set(node.right)
        if isinstance(node, ast.IfExp):
            return self.is_set(node.body) or self.is_set(node.orelse)
        return False


class SetIterationRule(Rule):
    id = "RPR003"
    title = "order-dependent consumption of a set"

    _HINT = (
        "set iteration order is hash-seed dependent; wrap in sorted(...) "
        "or suppress with a justification if the order provably cannot "
        "influence a decision"
    )

    def check(self, module: SourceModule, config: LintConfig) -> Iterator[Finding]:
        for scope, body in _walk_scopes(module.tree):
            types = _SetScope(scope, body)
            for node in self._scope_nodes(body):
                yield from self._check_node(module, node, types)

    def _scope_nodes(self, body: list[ast.stmt]) -> Iterator[ast.AST]:
        return _walk_scope_body(body)

    def _check_node(
        self, module: SourceModule, node: ast.AST, types: _SetScope
    ) -> Iterator[Finding]:
        if isinstance(node, ast.For) and types.is_set(node.iter):
            yield self.finding(
                module, node, f"for-loop over a set; {self._HINT}"
            )
        elif isinstance(node, ast.ListComp):
            for gen in node.generators:
                if types.is_set(gen.iter):
                    yield self.finding(
                        module,
                        node,
                        f"list built by iterating a set; {self._HINT}",
                    )
        elif isinstance(node, ast.Call):
            yield from self._check_call(module, node, types)

    def _check_call(
        self, module: SourceModule, node: ast.Call, types: _SetScope
    ) -> Iterator[Finding]:
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("min", "max"):
            if node.args and types.is_set(node.args[0]):
                yield self.finding(
                    module,
                    node,
                    f"{func.id}() over a set breaks ties by iteration "
                    f"order; {self._HINT}",
                )
        elif isinstance(func, ast.Name) and func.id == "next":
            if (
                node.args
                and isinstance(node.args[0], ast.Call)
                and isinstance(node.args[0].func, ast.Name)
                and node.args[0].func.id == "iter"
                and node.args[0].args
                and types.is_set(node.args[0].args[0])
            ):
                yield self.finding(
                    module,
                    node,
                    f"next(iter(<set>)) picks a hash-order element; "
                    f"{self._HINT}",
                )
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "pop"
            and not node.args
            and types.is_set(func.value)
        ):
            yield self.finding(
                module,
                node,
                f"set.pop() removes a hash-order element; {self._HINT}",
            )


# --------------------------------------------------------------------- #
# RPR004 — exception hygiene


_BUILTIN_EXCEPTIONS = frozenset(
    name
    for name in dir(builtins)
    if isinstance(getattr(builtins, name), type)
    and issubclass(getattr(builtins, name), BaseException)
)

#: builtin exceptions that are legitimate outside the repro hierarchy
_EXEMPT_RAISES = frozenset(
    {"NotImplementedError", "StopIteration", "StopAsyncIteration", "KeyboardInterrupt"}
)


def _repro_error_names() -> frozenset[str]:
    """Names of every class in the :mod:`repro.errors` hierarchy."""
    import repro.errors as errors_mod

    return frozenset(
        name
        for name in dir(errors_mod)
        if isinstance(getattr(errors_mod, name), type)
        and issubclass(getattr(errors_mod, name), errors_mod.ReproError)
    )


class ExceptionHygieneRule(Rule):
    id = "RPR004"
    title = "exception outside repro.errors, or a swallowing handler"

    def __init__(self, allowed: frozenset[str] | None = None):
        #: resolved lazily so importing the rule never imports repro.errors
        self._allowed = allowed

    @property
    def allowed(self) -> frozenset[str]:
        if self._allowed is None:
            self._allowed = _repro_error_names() | _EXEMPT_RAISES
        return self._allowed

    def check(self, module: SourceModule, config: LintConfig) -> Iterator[Finding]:
        allowed = self.allowed | self._local_subclasses(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Raise):
                yield from self._check_raise(module, node, allowed)
            elif isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(module, node)

    def _local_subclasses(self, tree: ast.Module) -> frozenset[str]:
        """Classes defined in this module on an allowed base (transitively)."""
        local: set[str] = set()
        classes = [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]
        grew = True
        while grew:
            grew = False
            for cls in classes:
                if cls.name in local:
                    continue
                bases = {b.split(".")[-1] for b in map(_dotted, cls.bases) if b}
                if bases & (self.allowed | local):
                    local.add(cls.name)
                    grew = True
        return frozenset(local)

    def _check_raise(
        self, module: SourceModule, node: ast.Raise, allowed: frozenset[str]
    ) -> Iterator[Finding]:
        exc = node.exc
        if exc is None:  # bare re-raise
            return
        if isinstance(exc, ast.Call):
            exc = exc.func
        dotted = _dotted(exc)
        if dotted is None:
            return
        name = dotted.split(".")[-1]
        if name in allowed:
            return
        if name in _BUILTIN_EXCEPTIONS:
            yield self.finding(
                module,
                node,
                f"raise of builtin {name} outside the repro.errors "
                "hierarchy; callers catch ReproError — raise (or subclass) "
                "an error from repro.errors instead",
            )

    def _check_handler(
        self, module: SourceModule, node: ast.ExceptHandler
    ) -> Iterator[Finding]:
        if node.type is None:
            yield self.finding(
                module,
                node,
                "bare 'except:' catches SystemExit/KeyboardInterrupt and "
                "hides failures; catch a specific exception",
            )
            return
        names = []
        exprs = (
            node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
        )
        for expr in exprs:
            dotted = _dotted(expr)
            if dotted is not None:
                names.append(dotted.split(".")[-1])
        if not ({"Exception", "BaseException"} & set(names)):
            return
        if any(isinstance(n, ast.Raise) for n in ast.walk(node)):
            return  # handler re-raises: translation, not swallowing
        yield self.finding(
            module,
            node,
            "'except Exception' without a re-raise swallows every failure "
            "(including determinism violations); narrow the type or re-raise",
        )


#: the per-file AST rules, in id order (RPR005 is repo-level, see drift.py)
AST_RULES: tuple[Rule, ...] = (
    WallClockRule(),
    UnseededRngRule(),
    SetIterationRule(),
    ExceptionHygieneRule(),
)
