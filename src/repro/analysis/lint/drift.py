"""RPR005 — cross-artifact drift checks.

Unlike RPR001–RPR004 these are not per-file AST checks: they compare
artifacts that must stay in lock-step but live in different places.

* ``EVENT_SCHEMA`` (the serialized trace-line contract) vs. the event
  dataclasses in :mod:`repro.telemetry.events` — a field added to or
  removed from a dataclass without a schema update silently changes what
  ``validate_trace_file`` accepts, and the CI trace smoke job stops
  guaranteeing anything.
* ``POLICY_REGISTRY`` / ``EXPERIMENTS`` vs. the prose: every
  ``--policy X`` / ``policy="X"`` / ``repro-fbc run <exp>`` reference in
  README.md and EXPERIMENTS.md must name something that exists, and every
  registered policy must be documented in the README.
* ``repro.service.app.ROUTES`` vs. the README endpoint list: the
  coordinator's documented HTTP surface must match the route table in
  both directions.
* ``ALL_RULE_IDS`` vs. the rule tables in README.md and EXPERIMENTS.md:
  every rule the linter enforces must have a row in both documents, and
  every documented ``| RPRxxx |`` row must name a rule that exists — a
  new rule shipped without documentation (or a stale row after a rule
  is retired) is drift.

All comparisons accept injected mappings so tests can demonstrate that a
removed event field is caught without mutating the live modules.
"""

from __future__ import annotations

import inspect
import re
from dataclasses import fields
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.analysis.lint.framework import Finding

__all__ = [
    "check_drift",
    "check_event_schema",
    "check_doc_references",
    "check_checkpoint_schema",
    "check_rule_docs",
    "check_service_routes",
]

RULE_ID = "RPR005"

_DOC_FILES = ("README.md", "EXPERIMENTS.md")

#: ``--policy lru`` on a CLI example line
_POLICY_FLAG_RE = re.compile(r"--policy[= ]([a-z0-9_-]+)")
#: ``policy="lru"`` / ``policy='lru'`` in an embedded code block
_POLICY_KWARG_RE = re.compile(r"""policy\s*=\s*["']([a-z0-9_-]+)["']""")
#: ``repro-fbc run fig6`` / ``repro-fbc trace fig5`` (placeholders like
#: ``<exp>`` do not match the token class and are naturally skipped)
_EXPERIMENT_RE = re.compile(r"repro-fbc (?:run|trace) ([a-z0-9_]+)")


def _finding(path: str, line: int, message: str) -> Finding:
    return Finding(
        rule=RULE_ID,
        severity="error",
        path=path,
        line=line,
        col=0,
        message=message,
    )


def _source_line(obj: Any, default: int = 1) -> int:
    try:
        return inspect.getsourcelines(obj)[1]
    except (OSError, TypeError):  # source unavailable (e.g. zipapp)
        return default


def check_event_schema(
    schema: Mapping[str, Mapping[str, Any]] | None = None,
    event_types: Mapping[str, type] | None = None,
) -> list[Finding]:
    """Compare ``EVENT_SCHEMA`` against the event dataclass definitions."""
    from repro.telemetry import events as events_mod

    if schema is None:
        schema = events_mod.EVENT_SCHEMA
    if event_types is None:
        event_types = events_mod.EVENT_TYPES
    path = Path(events_mod.__file__).as_posix()
    out: list[Finding] = []

    for kind in sorted(set(schema) - set(event_types)):
        out.append(
            _finding(
                path,
                1,
                f"EVENT_SCHEMA declares kind {kind!r} but no such event "
                "dataclass is registered in EVENT_TYPES",
            )
        )
    for kind in sorted(set(event_types) - set(schema)):
        out.append(
            _finding(
                path,
                _source_line(event_types[kind]),
                f"event dataclass {kind} is registered in EVENT_TYPES but "
                "missing from EVENT_SCHEMA",
            )
        )
    for kind in sorted(set(schema) & set(event_types)):
        cls = event_types[kind]
        declared = set(schema[kind])
        actual = {f.name for f in fields(cls)}
        line = _source_line(cls)
        for name in sorted(declared - actual):
            out.append(
                _finding(
                    path,
                    line,
                    f"EVENT_SCHEMA[{kind!r}] declares field {name!r} that "
                    f"the {cls.__name__} dataclass does not define — "
                    "schema and dataclass have drifted apart",
                )
            )
        for name in sorted(actual - declared):
            out.append(
                _finding(
                    path,
                    line,
                    f"{cls.__name__}.{name} is not declared in "
                    f"EVENT_SCHEMA[{kind!r}] — traces with this field "
                    "would fail validation",
                )
            )
    return out


def _doc_lines(root: Path) -> Iterator[tuple[str, int, str]]:
    for name in _DOC_FILES:
        doc = root / name
        if not doc.is_file():
            continue
        try:
            text = doc.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            continue
        for lineno, line in enumerate(text.splitlines(), start=1):
            yield name, lineno, line


def check_doc_references(
    root: Path | None = None,
    policy_registry: Mapping[str, Any] | None = None,
    experiments: Mapping[str, Any] | None = None,
) -> list[Finding]:
    """Check README/EXPERIMENTS policy + experiment references.

    With no ``root`` the repository root is derived from the installed
    package location; when the docs are absent (e.g. an installed wheel)
    the doc checks are skipped rather than failed.
    """
    if policy_registry is None:
        from repro.cache.registry import POLICY_REGISTRY

        policy_registry = POLICY_REGISTRY
    if experiments is None:
        from repro.experiments import EXPERIMENTS

        experiments = EXPERIMENTS
    if root is None:
        import repro

        root = Path(repro.__file__).resolve().parents[2]

    out: list[Finding] = []
    policies_seen: set[str] = set()
    readme_text = ""
    readme = root / "README.md"
    if readme.is_file():
        try:
            readme_text = readme.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            readme_text = ""

    for name, lineno, line in _doc_lines(root):
        for match in _POLICY_FLAG_RE.finditer(line):
            policies_seen.add(match.group(1))
            if match.group(1) not in policy_registry:
                out.append(
                    _finding(
                        name,
                        lineno,
                        f"documented policy {match.group(1)!r} is not in "
                        "POLICY_REGISTRY",
                    )
                )
        for match in _POLICY_KWARG_RE.finditer(line):
            if match.group(1) not in policy_registry:
                out.append(
                    _finding(
                        name,
                        lineno,
                        f"documented policy {match.group(1)!r} is not in "
                        "POLICY_REGISTRY",
                    )
                )
        for match in _EXPERIMENT_RE.finditer(line):
            if match.group(1) not in experiments:
                out.append(
                    _finding(
                        name,
                        lineno,
                        f"documented experiment {match.group(1)!r} is not a "
                        "registered experiment",
                    )
                )

    if readme_text:
        for policy in sorted(policy_registry):
            if not re.search(rf"\b{re.escape(policy)}\b", readme_text):
                out.append(
                    _finding(
                        "README.md",
                        1,
                        f"policy {policy!r} is registered but never "
                        "mentioned in README.md — document it or drop it",
                    )
                )
    return out


#: ``checkpoint schema v1`` in prose (the documented on-disk version)
_CKPT_SCHEMA_RE = re.compile(r"checkpoint schema v(\d+)")


def check_checkpoint_schema(
    root: Path | None = None,
    schema_version: int | None = None,
) -> list[Finding]:
    """README's documented checkpoint schema version vs. the code's.

    The README durability section must state the literal phrase
    ``checkpoint schema vN``; a bump of
    :data:`repro.durability.checkpoint.CHECKPOINT_SCHEMA_VERSION`
    without a doc update (or vice versa) is drift.
    """
    if schema_version is None:
        from repro.durability.checkpoint import CHECKPOINT_SCHEMA_VERSION

        schema_version = CHECKPOINT_SCHEMA_VERSION
    if root is None:
        import repro

        root = Path(repro.__file__).resolve().parents[2]

    readme = root / "README.md"
    if not readme.is_file():
        return []
    try:
        text = readme.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError):
        return []

    out: list[Finding] = []
    mentions = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in _CKPT_SCHEMA_RE.finditer(line):
            mentions.append((lineno, int(match.group(1))))
    if not mentions:
        out.append(
            _finding(
                "README.md",
                1,
                "README.md never states the checkpoint schema version "
                f"('checkpoint schema v{schema_version}') — document the "
                "on-disk durability format",
            )
        )
    for lineno, documented in mentions:
        if documented != schema_version:
            out.append(
                _finding(
                    "README.md",
                    lineno,
                    f"README.md documents checkpoint schema v{documented} "
                    f"but CHECKPOINT_SCHEMA_VERSION is {schema_version} — "
                    "doc and code have drifted apart",
                )
            )
    return out


#: a documented endpoint: `` `GET /v1/cache` `` in backticks
_ENDPOINT_RE = re.compile(r"`(GET|POST|PUT|DELETE|PATCH)\s+(/[^\s`]+)`")


def check_service_routes(
    root: Path | None = None,
    routes: "tuple[tuple[str, str], ...] | None" = None,
) -> list[Finding]:
    """README's documented HTTP endpoints vs. the service route table.

    The coordinator's HTTP surface is defined once, in
    :data:`repro.service.app.ROUTES`.  Every backtick-quoted
    ``METHOD /path`` in README.md must name a route that exists, and
    every route must appear in the README — an endpoint added to the
    service without a doc update (or vice versa) is drift.
    """
    if routes is None:
        from repro.service.app import ROUTES

        routes = ROUTES
    if root is None:
        import repro

        root = Path(repro.__file__).resolve().parents[2]

    readme = root / "README.md"
    if not readme.is_file():
        return []
    try:
        text = readme.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError):
        return []

    out: list[Finding] = []
    documented: dict[tuple[str, str], int] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in _ENDPOINT_RE.finditer(line):
            documented.setdefault((match.group(1), match.group(2)), lineno)

    if not documented:
        out.append(
            _finding(
                "README.md",
                1,
                "README.md documents no service endpoints — add a "
                "'Running as a service' section listing every route in "
                "repro.service.app.ROUTES",
            )
        )
        return out

    route_set = set(routes)
    for (method, path), lineno in sorted(documented.items()):
        if (method, path) not in route_set:
            out.append(
                _finding(
                    "README.md",
                    lineno,
                    f"documented endpoint '{method} {path}' is not in the "
                    "service route table (repro.service.app.ROUTES)",
                )
            )
    for method, path in sorted(route_set - set(documented)):
        out.append(
            _finding(
                "README.md",
                1,
                f"service route '{method} {path}' is not documented in "
                "README.md — the endpoint list has drifted from "
                "repro.service.app.ROUTES",
            )
        )
    return out


#: a rule-table row: ``| RPR001 | ... |``
_RULE_ROW_RE = re.compile(r"^\|\s*(RPR\d{3})\s*\|")


def check_rule_docs(
    root: Path | None = None,
    rule_ids: "tuple[str, ...] | None" = None,
) -> list[Finding]:
    """The README/EXPERIMENTS rule tables vs. ``ALL_RULE_IDS``.

    Both documents carry a table with one ``| RPRxxx | ... |`` row per
    lint rule.  Every rule the linter enforces must be documented in
    each file that has such a table, and every documented row must name
    a rule that exists.  Docs absent on disk (installed wheel) skip the
    check rather than fail it.
    """
    if rule_ids is None:
        from repro.analysis.lint.config import ALL_RULE_IDS

        rule_ids = ALL_RULE_IDS
    if root is None:
        import repro

        root = Path(repro.__file__).resolve().parents[2]

    out: list[Finding] = []
    rows: dict[str, dict[str, int]] = {}
    for name, lineno, line in _doc_lines(root):
        match = _RULE_ROW_RE.match(line)
        if match:
            rows.setdefault(name, {}).setdefault(match.group(1), lineno)

    for name, documented in sorted(rows.items()):
        for rule in sorted(set(documented) - set(rule_ids)):
            out.append(
                _finding(
                    name,
                    documented[rule],
                    f"documented lint rule {rule!r} does not exist — the "
                    "rule table has drifted from ALL_RULE_IDS",
                )
            )
        for rule in sorted(set(rule_ids) - set(documented)):
            out.append(
                _finding(
                    name,
                    1,
                    f"lint rule {rule!r} is enforced but has no row in "
                    f"{name}'s rule table — document what it checks",
                )
            )
    return out


def check_drift(root: Path | None = None) -> list[Finding]:
    """All RPR005 checks against the live artifacts."""
    return (
        check_event_schema()
        + check_doc_references(root=root)
        + check_checkpoint_schema(root=root)
        + check_rule_docs(root=root)
        + check_service_routes(root=root)
    )
