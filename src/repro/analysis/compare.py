"""Paired statistical comparison of two policies across seeds.

Paper-style claims ("OptFileBundle consistently gives a lower byte miss
ratio than Landlord") deserve statistics: this module compares two
policies on the *same* workloads (paired by seed) and reports the mean
difference, a bootstrap confidence interval, and a sign-test p-value — the
paired design removes the (large) between-workload variance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigError

__all__ = ["PairedComparison", "compare_paired"]


@dataclass(frozen=True)
class PairedComparison:
    """Result of :func:`compare_paired` (differences are a − b)."""

    n: int
    mean_a: float
    mean_b: float
    mean_diff: float
    ci_low: float
    ci_high: float
    sign_test_p: float
    wins_a: int  # pairs where a < b (a "wins" on a lower-is-better metric)

    @property
    def significant(self) -> bool:
        """True when the 95% bootstrap CI of the difference excludes 0."""
        return self.ci_low > 0 or self.ci_high < 0

    def summary(self, name_a: str = "a", name_b: str = "b") -> str:
        return (
            f"{name_a}={self.mean_a:.4f} vs {name_b}={self.mean_b:.4f} "
            f"(diff {self.mean_diff:+.4f}, 95% CI "
            f"[{self.ci_low:+.4f}, {self.ci_high:+.4f}], "
            f"sign-test p={self.sign_test_p:.3f}, "
            f"{name_a} wins {self.wins_a}/{self.n})"
        )


def _sign_test_p(wins: int, losses: int) -> float:
    """Two-sided exact binomial sign test p-value (ties dropped)."""
    n = wins + losses
    if n == 0:
        return 1.0
    k = min(wins, losses)
    tail = sum(math.comb(n, i) for i in range(k + 1)) / 2**n
    return min(1.0, 2.0 * tail)


def compare_paired(
    a: Sequence[float],
    b: Sequence[float],
    *,
    n_bootstrap: int = 10_000,
    seed: int = 0,
) -> PairedComparison:
    """Compare paired samples ``a`` and ``b`` (same seeds, same order).

    Reports ``a − b`` differences; for lower-is-better metrics (byte miss
    ratio) a negative mean difference favours ``a``.
    """
    if len(a) != len(b):
        raise ConfigError(f"paired samples differ in length: {len(a)} vs {len(b)}")
    if not a:
        raise ConfigError("no observations")
    if n_bootstrap < 100:
        raise ConfigError(f"n_bootstrap must be >= 100, got {n_bootstrap}")
    xa = np.asarray(a, dtype=np.float64)
    xb = np.asarray(b, dtype=np.float64)
    diffs = xa - xb

    rng = np.random.default_rng(seed)
    n = len(diffs)
    idx = rng.integers(0, n, size=(n_bootstrap, n))
    boot_means = diffs[idx].mean(axis=1)
    ci_low, ci_high = np.percentile(boot_means, [2.5, 97.5])

    wins = int(np.sum(diffs < 0))
    losses = int(np.sum(diffs > 0))
    return PairedComparison(
        n=n,
        mean_a=float(xa.mean()),
        mean_b=float(xb.mean()),
        mean_diff=float(diffs.mean()),
        ci_low=float(ci_low),
        ci_high=float(ci_high),
        sign_test_p=_sign_test_p(wins, losses),
        wins_a=wins,
    )
