"""Result presentation and static analysis.

Presentation: ASCII charts, experiment reports, paired policy
comparison.  Static analysis: the determinism & conformance linter in
:mod:`repro.analysis.lint` (``repro-fbc lint``).
"""

from repro.analysis.ascii_chart import render_chart
from repro.analysis.compare import PairedComparison, compare_paired
from repro.analysis.lint import Finding, LintConfig, LintResult, lint_paths
from repro.analysis.report import ExperimentOutput

__all__ = [
    "render_chart",
    "ExperimentOutput",
    "PairedComparison",
    "compare_paired",
    "Finding",
    "LintConfig",
    "LintResult",
    "lint_paths",
]
