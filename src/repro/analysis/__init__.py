"""Result presentation: ASCII charts and experiment reports."""

from repro.analysis.ascii_chart import render_chart
from repro.analysis.compare import PairedComparison, compare_paired
from repro.analysis.report import ExperimentOutput

__all__ = ["render_chart", "ExperimentOutput", "PairedComparison", "compare_paired"]
