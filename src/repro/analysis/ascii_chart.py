"""Terminal line charts for experiment series.

The benchmark harness prints the series behind each figure; a coarse ASCII
rendering makes trends (who wins, where curves cross) visible directly in
CI logs without a plotting stack.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ConfigError

__all__ = ["render_chart"]

_MARKERS = "ox+*#@%&"


def render_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 60,
    height: int = 16,
    title: str | None = None,
    y_label: str = "",
) -> str:
    """Render named (x, y) series as an ASCII scatter/line chart.

    Each series gets a marker character; the legend maps markers back to
    names.  Axis ranges span all series; y is formatted with 3 significant
    digits at the top and bottom gridline.
    """
    if not series:
        raise ConfigError("no series to render")
    if width < 10 or height < 4:
        raise ConfigError("chart must be at least 10x4")
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ConfigError("series contain no points")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, marker: str) -> None:
        col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][col] = marker

    legend: list[str] = []
    for k, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[k % len(_MARKERS)]
        legend.append(f"{marker}={name}")
        for x, y in pts:
            place(x, y, marker)

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:10.3g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_lo:10.3g} ┤" + "".join(grid[-1]))
    lines.append(" " * 10 + " └" + "─" * width)
    lines.append(
        " " * 12 + f"{x_lo:<12.4g}" + " " * max(0, width - 24) + f"{x_hi:>12.4g}"
    )
    lines.append("  " + ("" if not y_label else f"y: {y_label}   ") + "  ".join(legend))
    return "\n".join(lines)
