"""Uniform container for experiment outputs.

Each experiment driver (:mod:`repro.experiments`) returns an
:class:`ExperimentOutput`: identification, the rendered tables/charts a
human reads, and the raw rows tests and benchmarks assert against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["ExperimentOutput"]


@dataclass(frozen=True)
class ExperimentOutput:
    """One experiment's results, printable and machine-checkable."""

    exp_id: str
    title: str
    description: str
    sections: tuple[tuple[str, str], ...]  # (caption, rendered text) pairs
    data: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        parts = [f"== {self.exp_id}: {self.title} ==", self.description, ""]
        for caption, text in self.sections:
            parts.append(f"-- {caption} --")
            parts.append(text)
            parts.append("")
        return "\n".join(parts)
