"""Streaming statistics helpers used by metrics collection and benches."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ConfigError

__all__ = [
    "RunningStats",
    "mean_confidence_interval",
    "percentile",
    "summarize",
    "Summary",
]


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sample (0 < q <= 100).

    The one percentile definition the package uses for raw samples
    (loadgen latency reports, bench latency tables); bucketed estimates
    come from :meth:`repro.telemetry.metrics.Histogram.quantile` instead.
    Returns 0.0 for an empty sample.
    """
    if not 0.0 < q <= 100.0:
        raise ConfigError(f"percentile q must be in (0, 100], got {q}")
    if not sorted_values:
        return 0.0
    rank = max(1, -(-len(sorted_values) * q // 100))  # ceil without floats
    return sorted_values[int(rank) - 1]


class RunningStats:
    """Numerically stable streaming mean/variance (Welford's algorithm).

    Suitable for accumulating per-request metrics over long simulations
    without storing every observation.
    """

    __slots__ = ("_n", "_mean", "_m2", "_min", "_max", "_total")

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._total = 0.0

    def push(self, x: float) -> None:
        """Add one observation."""
        self._n += 1
        delta = x - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (x - self._mean)
        self._total += x
        if x < self._min:
            self._min = x
        if x > self._max:
            self._max = x

    def extend(self, xs: Iterable[float]) -> None:
        for x in xs:
            self.push(x)

    @property
    def count(self) -> int:
        return self._n

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        if self._n == 0:
            raise ConfigError("no observations")
        return self._mean

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); 0.0 for a single observation."""
        if self._n == 0:
            raise ConfigError("no observations")
        if self._n == 1:
            return 0.0
        return self._m2 / (self._n - 1)

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        if self._n == 0:
            raise ConfigError("no observations")
        return self._min

    @property
    def max(self) -> float:
        if self._n == 0:
            raise ConfigError("no observations")
        return self._max

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Combine two accumulators (parallel Welford merge)."""
        merged = RunningStats()
        n = self._n + other._n
        if n == 0:
            return merged
        delta = other._mean - self._mean
        merged._n = n
        merged._mean = self._mean + delta * (other._n / n)
        merged._m2 = self._m2 + other._m2 + delta * delta * self._n * other._n / n
        merged._min = min(self._min, other._min)
        merged._max = max(self._max, other._max)
        merged._total = self._total + other._total
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self._n == 0:
            return "RunningStats(empty)"
        return f"RunningStats(n={self._n}, mean={self._mean:.6g}, sd={self.stdev:.6g})"


# Two-sided critical values of Student's t at 95% confidence, indexed by
# degrees of freedom; the normal value 1.96 is used beyond the table.
_T_TABLE = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447, 7: 2.365,
    8: 2.306, 9: 2.262, 10: 2.228, 12: 2.179, 15: 2.131, 20: 2.086,
    25: 2.060, 30: 2.042, 40: 2.021, 60: 2.000, 120: 1.980,
}


def _t_critical(dof: int) -> float:
    if dof <= 0:
        raise ConfigError("need at least 2 observations for an interval")
    best = 1.96
    for k in sorted(_T_TABLE):
        if dof <= k:
            return _T_TABLE[k]
    return best


def mean_confidence_interval(xs: Sequence[float]) -> tuple[float, float]:
    """Sample mean and 95% confidence half-width of ``xs``.

    Returns ``(mean, half_width)``; half-width is 0 for a single value.
    """
    n = len(xs)
    if n == 0:
        raise ConfigError("no observations")
    stats = RunningStats()
    stats.extend(xs)
    if n == 1:
        return stats.mean, 0.0
    half = _t_critical(n - 1) * stats.stdev / math.sqrt(n)
    return stats.mean, half


@dataclass(frozen=True, slots=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    stdev: float
    min: float
    max: float


def summarize(xs: Sequence[float]) -> Summary:
    """Summary statistics of a non-empty sample."""
    stats = RunningStats()
    stats.extend(xs)
    return Summary(stats.count, stats.mean, stats.stdev, stats.min, stats.max)
