"""Parsing and formatting of byte sizes.

Experiment configs express cache and file sizes as human strings
(``"500MB"``, ``"2 GiB"``); internally everything is integer bytes.
Binary units (powers of 1024) are used throughout — ``MB`` here means MiB,
matching the constants in :mod:`repro.types`.
"""

from __future__ import annotations

import re

from repro.errors import ConfigError
from repro.types import GB, KB, MB, TB, SizeBytes

__all__ = ["parse_size", "format_size"]

_UNITS: dict[str, int] = {
    "": 1,
    "b": 1,
    "k": KB,
    "kb": KB,
    "kib": KB,
    "m": MB,
    "mb": MB,
    "mib": MB,
    "g": GB,
    "gb": GB,
    "gib": GB,
    "t": TB,
    "tb": TB,
    "tib": TB,
}

_SIZE_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([a-zA-Z]*)\s*$")


def parse_size(text: str | int | float) -> SizeBytes:
    """Parse a human-readable size into integer bytes.

    Accepts plain numbers (taken as bytes) or a number followed by a unit
    suffix from {B, KB, MB, GB, TB} (case-insensitive, ``KiB`` style also
    accepted).  Fractional values are rounded to the nearest byte.

    >>> parse_size("1MB")
    1048576
    >>> parse_size("1.5 KB")
    1536
    """
    if isinstance(text, (int, float)):
        if text <= 0:
            raise ConfigError(f"size must be positive, got {text}")
        return int(round(text))
    match = _SIZE_RE.match(text)
    if not match:
        raise ConfigError(f"cannot parse size {text!r}")
    value = float(match.group(1))
    unit = match.group(2).lower()
    if unit not in _UNITS:
        raise ConfigError(f"unknown size unit {match.group(2)!r} in {text!r}")
    size = int(round(value * _UNITS[unit]))
    if size <= 0:
        raise ConfigError(f"size must be positive, got {text!r}")
    return size


def format_size(size: SizeBytes, precision: int = 1) -> str:
    """Format bytes for display with the largest unit that keeps value ≥ 1.

    >>> format_size(1536)
    '1.5KB'
    """
    if size < 0:
        raise ConfigError(f"size must be non-negative, got {size}")
    for unit, factor in (("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB)):
        if size >= factor:
            return f"{size / factor:.{precision}f}{unit}"
    return f"{size}B"
