"""Plain-text table rendering for experiment and benchmark output.

The benchmark harness prints the same rows/series the paper's tables and
figures report; this module renders them as aligned ASCII tables so the
output is directly comparable across runs and machines.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["render_table"]


def _cell(value: Any, floatfmt: str) -> str:
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    floatfmt: str = ".4f",
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    Numeric columns are right-aligned, text columns left-aligned.  ``rows``
    may be ragged only in the sense of shorter rows, which are padded with
    empty cells.

    >>> print(render_table(["a", "b"], [[1, 2.5]]))
    a |      b
    --+-------
    1 | 2.5000
    """
    ncols = len(headers)
    text_rows: list[list[str]] = []
    for row in rows:
        cells = [_cell(v, floatfmt) for v in row]
        cells += [""] * (ncols - len(cells))
        text_rows.append(cells[:ncols])

    numeric = [True] * ncols
    for row in rows:
        for i, v in enumerate(row[:ncols]):
            if not isinstance(v, (int, float)):
                numeric[i] = False

    widths = [len(h) for h in headers]
    for cells in text_rows:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.rjust(widths[i]) if numeric[i] else cell.ljust(widths[i]))
        return " | ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(cells) for cells in text_rows)
    return "\n".join(lines)
