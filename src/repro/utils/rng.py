"""Seeded random-number-generator management.

Every stochastic component in the library takes an explicit
:class:`numpy.random.Generator`.  :class:`RngFactory` derives independent,
reproducible substreams from one master seed via ``numpy``'s
``SeedSequence.spawn`` machinery, so that e.g. file-size generation and
request sampling do not perturb each other when one of them changes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

__all__ = ["RngFactory", "derive_rng"]


class RngFactory:
    """Derive named, independent random substreams from a master seed.

    Streams are keyed by string name; requesting the same name twice returns
    generators with identical state sequences (each call returns a *fresh*
    generator seeded the same way), which makes component-level replay easy.

    Example
    -------
    >>> factory = RngFactory(1234)
    >>> sizes_rng = factory.rng("file-sizes")
    >>> req_rng = factory.rng("requests")
    """

    def __init__(self, seed: int | None = 0):
        if seed is not None and seed < 0:
            raise ConfigError(f"seed must be non-negative, got {seed}")
        self._seed = seed

    @property
    def seed(self) -> int | None:
        return self._seed

    def rng(self, name: str) -> np.random.Generator:
        """A generator for the named stream, deterministic in (seed, name)."""
        return derive_rng(self._seed, name)

    def child(self, name: str) -> "RngFactory":
        """A factory whose streams are independent of this factory's."""
        sub_seed = _hash_name(self._seed if self._seed is not None else 0, name)
        return RngFactory(sub_seed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngFactory(seed={self._seed!r})"


def _hash_name(seed: int, name: str) -> int:
    """Stable 64-bit mix of a seed and a stream name."""
    acc = np.uint64(seed & 0xFFFFFFFFFFFFFFFF)
    for byte in name.encode("utf-8"):
        acc = np.uint64((int(acc) ^ byte) * 0x100000001B3 & 0xFFFFFFFFFFFFFFFF)
    return int(acc)


def derive_rng(seed: int | None, name: str = "") -> np.random.Generator:
    """A reproducible generator derived from ``seed`` and a stream ``name``.

    ``seed=None`` yields OS entropy (non-reproducible), for exploratory use.
    """
    if seed is None:
        return np.random.default_rng()
    return np.random.default_rng(np.random.SeedSequence([seed & 0xFFFFFFFFFFFFFFFF, _hash_name(seed, name)]))
