"""Small shared utilities: units, RNG management, statistics, tables."""

from repro.utils.units import format_size, parse_size
from repro.utils.rng import RngFactory, derive_rng
from repro.utils.stats import RunningStats, mean_confidence_interval, summarize
from repro.utils.tables import render_table

__all__ = [
    "format_size",
    "parse_size",
    "RngFactory",
    "derive_rng",
    "RunningStats",
    "mean_confidence_interval",
    "summarize",
    "render_table",
]
