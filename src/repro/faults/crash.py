"""Seeded process-crash injection for durability testing.

Grid faults (:mod:`repro.faults.spec`) degrade the *simulated* hardware;
a :class:`CrashSpec` degrades the *simulating process* itself, so the
journal/checkpoint/recovery machinery in :mod:`repro.durability` can be
exercised deterministically: crash exactly at the Nth state mutation
(one mutation = one journal commit), in one of three modes:

* ``"raise"`` — raise :class:`~repro.errors.InjectedCrashError`; the
  cheapest mode, suitable for in-process kill sweeps (``finally`` blocks
  still run, which is *stricter* than a real crash only if recovery
  wrongly depends on them — the SIGKILL mode guards against that);
* ``"sigkill"`` — ``SIGKILL`` the current process: no atexit handlers,
  no buffered-write flushes, the closest a test can get to a power cut
  without one;
* ``"torn"`` — first append a deliberately truncated frame to the
  current journal segment (the torn tail a mid-write crash leaves), then
  raise.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigError, InjectedCrashError

__all__ = ["CrashSpec", "CrashInjector", "CRASH_MODES"]

#: supported crash modes (see module docstring)
CRASH_MODES = frozenset({"raise", "sigkill", "torn"})


@dataclass(frozen=True)
class CrashSpec:
    """Crash the process at the ``at_mutation``-th state mutation.

    Attributes
    ----------
    at_mutation:
        1-based index of the journal commit at which to crash (the
        mutation itself completes first — the crash lands *between*
        commits, where a real interruption would).
    mode:
        One of ``"raise"``, ``"sigkill"``, ``"torn"``.
    """

    at_mutation: int
    mode: str = "raise"

    def __post_init__(self) -> None:
        if self.at_mutation < 1:
            raise ConfigError(
                f"at_mutation must be >= 1, got {self.at_mutation}"
            )
        if self.mode not in CRASH_MODES:
            raise ConfigError(
                f"crash mode must be one of {sorted(CRASH_MODES)}, "
                f"got {self.mode!r}"
            )


class CrashInjector:
    """Counts mutations and fires the configured crash on schedule."""

    def __init__(self, spec: CrashSpec):
        self.spec = spec
        self.mutations = 0

    def tick(self, *, torn_hook: Callable[[], None] | None = None) -> None:
        """Record one completed mutation; crash if the schedule says so.

        ``torn_hook`` is invoked before the crash in ``"torn"`` mode (the
        durable runner passes a callback that appends a truncated frame
        to the live journal segment).
        """
        self.mutations += 1
        if self.mutations != self.spec.at_mutation:
            return
        if self.spec.mode == "torn" and torn_hook is not None:
            torn_hook()
        if self.spec.mode == "sigkill":
            os.kill(os.getpid(), signal.SIGKILL)
        raise InjectedCrashError(
            f"injected crash at mutation {self.mutations} "
            f"(mode={self.spec.mode!r})"
        )
