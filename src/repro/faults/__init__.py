"""Fault injection for the timed data-grid layer.

The paper's premise is that an SRM *masks* an unreliable deep-storage and
WAN hierarchy from jobs (Section 1); this package supplies the
unreliability.  A :class:`FaultSpec` declares per-component fault rates
(MSS drive failures, WAN transfer failures and latency spikes,
replica-site downtime windows) and a :class:`FaultInjector` turns the
spec into deterministic, seeded decisions so degraded runs replay
exactly.  The fault-tolerant staging pipeline that consumes these
decisions — retries with capped exponential backoff, per-file staging
timeouts, replica failover — lives in :mod:`repro.grid.srm`.

:class:`CrashSpec` / :class:`CrashInjector` extend the same philosophy
to the simulating *process*: deterministic kill-at-the-Nth-mutation
crashes (exception, SIGKILL, or torn-write) that drive the
:mod:`repro.durability` recovery tests.
"""

from repro.faults.crash import CRASH_MODES, CrashInjector, CrashSpec
from repro.faults.injector import FaultInjector
from repro.faults.spec import NO_FAULTS, FaultSpec

__all__ = [
    "FaultSpec",
    "FaultInjector",
    "NO_FAULTS",
    "CrashSpec",
    "CrashInjector",
    "CRASH_MODES",
]
