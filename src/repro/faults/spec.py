"""Declarative fault models for the timed data-grid layer.

A :class:`FaultSpec` names *what can go wrong* and how often, per
component class:

* **MSS drive failures** — a tape retrieval aborts partway through its
  service time (bad mount, drive drop), wasting the drive occupancy
  accrued so far.
* **WAN transfer failures** — a staging transfer dies mid-flight and the
  bytes must be re-sent.
* **Latency spikes** — a transfer completes but takes a multiple of its
  nominal time (congestion, routing flaps).
* **Replica-site downtime** — whole sites become unreachable for
  exponentially-distributed windows; the SRM fails over to other
  replicas while a site is down.

The spec is pure data: every probability is per *operation* (retrieval or
transfer), downtime is parameterised by the long-run down *fraction* and
the mean outage length.  :class:`~repro.faults.injector.FaultInjector`
turns a spec into deterministic per-stream decisions via
:func:`repro.utils.rng.derive_rng`, so any run is exactly replayable from
``(spec, seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError

__all__ = ["FaultSpec", "NO_FAULTS"]


@dataclass(frozen=True)
class FaultSpec:
    """Fault rates and shapes for one simulated grid.

    Attributes
    ----------
    seed:
        Master seed of every fault decision stream (independent of the
        workload seed so fault schedules and traces can be varied
        separately).
    drive_failure_rate:
        Probability that one MSS retrieval aborts before completing.
    transfer_failure_rate:
        Probability that one WAN transfer aborts before completing.
    latency_spike_rate:
        Probability that a (successful) transfer is slowed by
        ``latency_spike_factor``.
    latency_spike_factor:
        Multiplier applied to a spiked transfer's total time (>= 1).
    site_downtime_rate:
        Long-run fraction of time each replica site is unreachable
        (0 disables downtime).  Must be < 1.
    mean_downtime:
        Mean length in simulated seconds of one outage window; uptime
        windows are sized so the long-run down fraction matches
        ``site_downtime_rate``.
    """

    seed: int = 0
    drive_failure_rate: float = 0.0
    transfer_failure_rate: float = 0.0
    latency_spike_rate: float = 0.0
    latency_spike_factor: float = 4.0
    site_downtime_rate: float = 0.0
    mean_downtime: float = 120.0

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ConfigError(f"seed must be non-negative, got {self.seed}")
        for name in (
            "drive_failure_rate",
            "transfer_failure_rate",
            "latency_spike_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")
        if not 0.0 <= self.site_downtime_rate < 1.0:
            raise ConfigError(
                f"site_downtime_rate must be in [0, 1), got {self.site_downtime_rate}"
            )
        if self.latency_spike_factor < 1.0:
            raise ConfigError(
                f"latency_spike_factor must be >= 1, got {self.latency_spike_factor}"
            )
        if self.mean_downtime <= 0:
            raise ConfigError(
                f"mean_downtime must be positive, got {self.mean_downtime}"
            )

    @property
    def enabled(self) -> bool:
        """True when any fault can actually fire."""
        return (
            self.drive_failure_rate > 0
            or self.transfer_failure_rate > 0
            or self.latency_spike_rate > 0
            or self.site_downtime_rate > 0
        )

    @property
    def mean_uptime(self) -> float:
        """Mean up-window length implied by the down fraction."""
        p = self.site_downtime_rate
        if p <= 0:
            return float("inf")
        return self.mean_downtime * (1.0 - p) / p

    def with_seed(self, seed: int) -> "FaultSpec":
        """The same fault model under a different decision seed."""
        return replace(self, seed=seed)

    @classmethod
    def uniform(cls, rate: float, *, seed: int = 0, **overrides) -> "FaultSpec":
        """A spec degrading every component class at the same ``rate``.

        Drive failures, transfer failures and latency spikes all fire with
        probability ``rate``; sites are down ``rate / 2`` of the time
        (whole-site loss is rarer than per-operation faults in practice).
        """
        if not 0.0 <= rate <= 1.0:
            raise ConfigError(f"rate must be in [0, 1], got {rate}")
        return cls(
            seed=seed,
            drive_failure_rate=rate,
            transfer_failure_rate=rate,
            latency_spike_rate=rate,
            site_downtime_rate=rate / 2.0,
            **overrides,
        )


#: The identity spec: nothing ever fails (simulations behave exactly as if
#: no injector were attached).
NO_FAULTS = FaultSpec()
