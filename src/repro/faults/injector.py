"""Deterministic fault injection driven by named RNG substreams.

A :class:`FaultInjector` answers, at simulation time, the questions the
grid components ask: *does this retrieval fail?  does this transfer fail
or spike?  is this site down right now?*  Every answer is drawn from a
substream derived from ``(spec.seed, stream name)`` via
:func:`repro.utils.rng.derive_rng`, so two runs over the same event
sequence see the *same* fault schedule — chaos experiments are exactly
replayable and policy comparisons under faults are paired.

Determinism contract
--------------------
* A rate of zero consumes **no** randomness for that component class, so
  a zero-rate spec leaves the simulation byte-identical to running with
  no injector at all.
* Per-component streams are independent: changing the drive failure rate
  does not perturb the transfer fault schedule.
* Site downtime windows are a renewal process (exponential up/down
  windows) materialised lazily and cached, so ``is_down`` may be asked
  about any non-decreasing-or-not sequence of times.
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from repro.errors import FaultInjectionError
from repro.faults.spec import FaultSpec
from repro.telemetry import FaultInjected, current_recorder

__all__ = ["FaultInjector"]


class FaultInjector:
    """Turns a :class:`FaultSpec` into concrete, replayable fault decisions."""

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        # Injectors are built inside the run's recorder context; fault
        # decisions happen deep in event callbacks, so the recorder is
        # captured once here rather than looked up per decision.
        self._recorder = current_recorder()
        self._streams: dict[str, np.random.Generator] = {}
        # per-site downtime schedule: sorted down windows + horizon generated
        self._down_windows: dict[str, list[tuple[float, float]]] = {}
        self._down_horizon: dict[str, float] = {}
        self.drive_faults = 0
        self.transfer_faults = 0
        self.latency_spikes = 0

    # ------------------------------------------------------------------ #

    @property
    def enabled(self) -> bool:
        return self.spec.enabled

    def stream(self, name: str) -> np.random.Generator:
        """The persistent generator of one named decision stream."""
        try:
            return self._streams[name]
        except KeyError:
            from repro.utils.rng import derive_rng

            gen = derive_rng(self.spec.seed, f"faults/{name}")
            self._streams[name] = gen
            return gen

    # ------------------------------------------------------------------ #
    # per-operation faults

    def drive_fault(self, component: str) -> float | None:
        """Does the next retrieval at ``component`` fail?

        Returns the fraction of the service time elapsed before the
        failure surfaces (in ``(0, 1)``), or ``None`` on success.
        """
        rate = self.spec.drive_failure_rate
        if rate <= 0.0:
            return None
        rng = self.stream(f"drive/{component}")
        if rng.random() >= rate:
            return None
        self.drive_faults += 1
        if self._recorder.active:
            self._recorder.emit(FaultInjected(fault="drive", component=component))
        return float(rng.uniform(0.05, 0.95))

    def transfer_fault(self, component: str) -> float | None:
        """Does the next WAN transfer via ``component`` fail?

        Returns the fraction of the transfer time elapsed before the
        failure surfaces, or ``None`` on success.
        """
        rate = self.spec.transfer_failure_rate
        if rate <= 0.0:
            return None
        rng = self.stream(f"transfer/{component}")
        if rng.random() >= rate:
            return None
        self.transfer_faults += 1
        if self._recorder.active:
            self._recorder.emit(FaultInjected(fault="transfer", component=component))
        return float(rng.uniform(0.05, 0.95))

    def latency_spike(self, component: str) -> float:
        """Time multiplier for the next (successful) transfer (1.0 = none)."""
        rate = self.spec.latency_spike_rate
        if rate <= 0.0:
            return 1.0
        rng = self.stream(f"spike/{component}")
        if rng.random() >= rate:
            return 1.0
        self.latency_spikes += 1
        if self._recorder.active:
            self._recorder.emit(
                FaultInjected(fault="latency_spike", component=component)
            )
        return self.spec.latency_spike_factor

    # ------------------------------------------------------------------ #
    # site downtime windows

    def is_down(self, site: str, now: float) -> bool:
        """Is ``site`` inside one of its outage windows at time ``now``?"""
        if self.spec.site_downtime_rate <= 0.0:
            return False
        if now < 0:
            raise FaultInjectionError(f"cannot query downtime at t={now} < 0")
        windows = self._extend_downtime(site, now)
        idx = bisect_right(windows, (now, float("inf"))) - 1
        return idx >= 0 and windows[idx][0] <= now < windows[idx][1]

    def downtime_windows(self, site: str, until: float) -> list[tuple[float, float]]:
        """All outage windows of ``site`` starting before ``until``."""
        if self.spec.site_downtime_rate <= 0.0:
            return []
        windows = self._extend_downtime(site, until)
        return [w for w in windows if w[0] < until]

    def _extend_downtime(self, site: str, now: float) -> list[tuple[float, float]]:
        """Materialise the renewal process for ``site`` past ``now``."""
        windows = self._down_windows.setdefault(site, [])
        horizon = self._down_horizon.get(site, 0.0)
        if horizon > now:
            return windows
        rng = self.stream(f"downtime/{site}")
        mean_up = self.spec.mean_uptime
        mean_down = self.spec.mean_downtime
        # generate a margin past `now` so repeated queries rarely re-enter
        target = now + 2.0 * (mean_up + mean_down)
        while horizon <= target:
            horizon += float(rng.exponential(mean_up))
            down_len = float(rng.exponential(mean_down))
            windows.append((horizon, horizon + down_len))
            horizon += down_len
        self._down_horizon[site] = horizon
        return windows

    # ------------------------------------------------------------------ #

    def counters(self) -> dict[str, int]:
        """How many faults of each class have been injected so far."""
        return {
            "drive_faults": self.drive_faults,
            "transfer_faults": self.transfer_faults,
            "latency_spikes": self.latency_spikes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultInjector(spec={self.spec!r}, counters={self.counters()!r})"
