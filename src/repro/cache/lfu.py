"""Least-Frequently-Used replacement with a lazy min-heap.

Frequency counts persist across evictions ("perfect LFU"), matching the
popularity-based strategies the paper argues against: the most *popular*
files are retained regardless of which combinations occur together.
"""

from __future__ import annotations

import heapq
import itertools

from repro.cache.policy import PerFilePolicy
from repro.types import FileId

__all__ = ["LFUPolicy"]


class LFUPolicy(PerFilePolicy):
    """Evict the least frequently accessed file (ties: least recent)."""

    name = "lfu"

    def __init__(self) -> None:
        super().__init__()
        self._freq: dict[FileId, int] = {}
        # lazy heap of (freq_at_push, tiebreak, fid); stale entries skipped
        self._heap: list[tuple[int, int, FileId]] = []
        self._tiebreak = itertools.count()

    def _pick_victim(self, exclude: frozenset[FileId]) -> FileId | None:
        cache = self.cache
        deferred: list[tuple[int, int, FileId]] = []
        victim: FileId | None = None
        while self._heap:
            freq, tb, fid = heapq.heappop(self._heap)
            if fid not in cache or self._freq.get(fid) != freq:
                continue  # stale entry
            if fid in exclude:
                deferred.append((freq, tb, fid))
                continue
            victim = fid
            break
        for entry in deferred:
            heapq.heappush(self._heap, entry)
        return victim

    def _note_access(self, file_id: FileId, was_loaded: bool) -> None:
        freq = self._freq.get(file_id, 0) + 1
        self._freq[file_id] = freq
        heapq.heappush(self._heap, (freq, next(self._tiebreak), file_id))

    def reset(self) -> None:
        super().reset()
        self._freq.clear()
        self._heap.clear()
