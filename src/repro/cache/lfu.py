"""Least-Frequently-Used replacement with a lazy min-heap.

Frequency counts persist across evictions ("perfect LFU"), matching the
popularity-based strategies the paper argues against: the most *popular*
files are retained regardless of which combinations occur together.
"""

from __future__ import annotations

import heapq

from repro.cache.policy import PerFilePolicy
from repro.types import FileId

__all__ = ["LFUPolicy"]


class LFUPolicy(PerFilePolicy):
    """Evict the least frequently accessed file (ties: least recent)."""

    name = "lfu"

    def __init__(self) -> None:
        super().__init__()
        self._freq: dict[FileId, int] = {}
        # lazy heap of (freq_at_push, tiebreak, fid); stale entries skipped
        self._heap: list[tuple[int, int, FileId]] = []
        # plain int (not itertools.count) so checkpoints can export it
        self._tiebreak = 0

    def _pick_victim(self, exclude: frozenset[FileId]) -> FileId | None:
        cache = self.cache
        deferred: list[tuple[int, int, FileId]] = []
        victim: FileId | None = None
        while self._heap:
            freq, tb, fid = heapq.heappop(self._heap)
            if fid not in cache or self._freq.get(fid) != freq:
                continue  # stale entry
            if fid in exclude:
                deferred.append((freq, tb, fid))
                continue
            victim = fid
            break
        for entry in deferred:
            heapq.heappush(self._heap, entry)
        return victim

    def _note_access(self, file_id: FileId, was_loaded: bool) -> None:
        freq = self._freq.get(file_id, 0) + 1
        self._freq[file_id] = freq
        tb = self._tiebreak
        self._tiebreak += 1
        heapq.heappush(self._heap, (freq, tb, file_id))

    def reset(self) -> None:
        super().reset()
        self._freq.clear()
        self._heap.clear()

    def export_state(self) -> dict:
        # the heap list order is itself a valid heap, so it round-trips
        return {
            "freq": dict(self._freq),
            "heap": [list(entry) for entry in self._heap],
            "tiebreak": self._tiebreak,
        }

    def import_state(self, state: dict) -> None:
        self._freq = {str(f): int(n) for f, n in state["freq"].items()}
        self._heap = [(int(f), int(tb), str(fid)) for f, tb, fid in state["heap"]]
        self._tiebreak = int(state["tiebreak"])
