"""First-In-First-Out replacement: evict the file loaded longest ago."""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.policy import PerFilePolicy
from repro.types import FileId

__all__ = ["FIFOPolicy"]


class FIFOPolicy(PerFilePolicy):
    """Evict in load order, ignoring hits."""

    name = "fifo"

    def __init__(self) -> None:
        super().__init__()
        self._order: OrderedDict[FileId, None] = OrderedDict()

    def _pick_victim(self, exclude: frozenset[FileId]) -> FileId | None:
        for fid in self._order:
            if fid not in exclude:
                return fid
        return None

    def _note_evicted(self, file_id: FileId) -> None:
        self._order.pop(file_id, None)

    def _note_access(self, file_id: FileId, was_loaded: bool) -> None:
        if was_loaded:  # hits do not refresh FIFO position
            self._order[file_id] = None

    def reset(self) -> None:
        super().reset()
        self._order.clear()

    def export_state(self) -> dict:
        return {"order": list(self._order)}

    def import_state(self, state: dict) -> None:
        self._order = OrderedDict((fid, None) for fid in state["order"])
