"""Random replacement — the memoryless reference baseline."""

from __future__ import annotations

import numpy as np

from repro.cache.policy import PerFilePolicy
from repro.errors import ConfigError
from repro.types import FileId

__all__ = ["RandomPolicy"]


class RandomPolicy(PerFilePolicy):
    """Evict a uniformly random resident file outside the current bundle.

    The generator must be supplied explicitly — either a ready
    ``numpy.random.Generator`` or a ``seed`` — so the victim stream is
    always part of the experiment's visible seed plumbing.  The policy
    registry passes the documented default seed for CLI/experiment use.
    """

    name = "random"

    def __init__(
        self,
        rng: np.random.Generator | None = None,
        *,
        seed: int | None = None,
    ) -> None:
        super().__init__()
        if rng is not None and seed is not None:
            raise ConfigError("random policy takes rng= or seed=, not both")
        if rng is None:
            if seed is None:
                raise ConfigError(
                    "random policy needs an explicit rng= or seed=; there "
                    "is no silent default (the registry supplies the "
                    "documented default seed for CLI runs)"
                )
            rng = np.random.default_rng(seed)
        self._rng = rng

    def _pick_victim(self, exclude: frozenset[FileId]) -> FileId | None:
        candidates = [f for f in self.cache.residents() if f not in exclude]
        if not candidates:
            return None
        return candidates[int(self._rng.integers(len(candidates)))]

    def export_state(self) -> dict:
        # bit_generator.state is a plain JSON-able dict (Python ints are
        # arbitrary precision, so the 128-bit PCG64 state survives)
        return {"rng_state": self._rng.bit_generator.state}

    def import_state(self, state: dict) -> None:
        self._rng.bit_generator.state = state["rng_state"]
