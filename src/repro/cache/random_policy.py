"""Random replacement — the memoryless reference baseline."""

from __future__ import annotations

import numpy as np

from repro.cache.policy import PerFilePolicy
from repro.types import FileId

__all__ = ["RandomPolicy"]


class RandomPolicy(PerFilePolicy):
    """Evict a uniformly random resident file outside the current bundle."""

    name = "random"

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def _pick_victim(self, exclude: frozenset[FileId]) -> FileId | None:
        candidates = [f for f in self.cache.residents() if f not in exclude]
        if not candidates:
            return None
        return candidates[int(self._rng.integers(len(candidates)))]
