"""Largest-file-first replacement.

Evicting the biggest file frees the most space per eviction; a classic
web-caching baseline (SIZE policy) that maximizes the *number* of resident
files at the expense of byte hit ratio.
"""

from __future__ import annotations

import heapq

from repro.cache.policy import PerFilePolicy
from repro.types import FileId

__all__ = ["LargestFirstPolicy"]


class LargestFirstPolicy(PerFilePolicy):
    """Evict the largest resident file (ties broken by id)."""

    name = "size"

    def __init__(self) -> None:
        super().__init__()
        # lazy max-heap by (−size, fid)
        self._heap: list[tuple[int, FileId]] = []

    def _pick_victim(self, exclude: frozenset[FileId]) -> FileId | None:
        cache = self.cache
        deferred: list[tuple[int, FileId]] = []
        victim: FileId | None = None
        while self._heap:
            neg_size, fid = heapq.heappop(self._heap)
            if fid not in cache:
                continue
            if fid in exclude:
                deferred.append((neg_size, fid))
                continue
            victim = fid
            break
        for entry in deferred:
            heapq.heappush(self._heap, entry)
        return victim

    def _note_access(self, file_id: FileId, was_loaded: bool) -> None:
        if was_loaded:
            heapq.heappush(self._heap, (-self.sizes[file_id], file_id))

    def export_state(self) -> dict:
        return {"heap": [list(entry) for entry in self._heap]}

    def import_state(self, state: dict) -> None:
        self._heap = [(int(neg), str(fid)) for neg, fid in state["heap"]]
