"""LRU-K replacement (O'Neil, O'Neil, Weikum; SIGMOD'93), bundle-adapted.

The victim is the file whose K-th most recent reference lies farthest in
the past (files with fewer than K references rank before all others,
ordered by their oldest known reference).  K = 2 distinguishes genuinely
re-referenced files from one-off scans — a classic improvement over LRU on
looping/scanning workloads such as repeated multi-file analyses.
"""

from __future__ import annotations

from collections import deque

from repro.cache.policy import PerFilePolicy
from repro.errors import ConfigError
from repro.types import FileId

__all__ = ["LRUKPolicy"]


class LRUKPolicy(PerFilePolicy):
    """Evict the file with the oldest K-th most recent reference."""

    name = "lruk"

    def __init__(self, k: int = 2) -> None:
        if k < 1:
            raise ConfigError(f"k must be >= 1, got {k}")
        super().__init__()
        self.k = k
        self._clock = 0
        # last K reference times per file, newest last
        self._refs: dict[FileId, deque[int]] = {}

    def _kth_ref(self, file_id: FileId) -> tuple[int, int]:
        """Sort key: (has-K-references, K-th last or oldest reference)."""
        refs = self._refs.get(file_id)
        if not refs:
            return (0, -1)
        if len(refs) < self.k:
            return (0, refs[0])
        return (1, refs[0])

    def _pick_victim(self, exclude: frozenset[FileId]) -> FileId | None:
        best: FileId | None = None
        best_key: tuple[int, int, FileId] | None = None
        for fid in self.cache.residents():
            if fid in exclude:
                continue
            has_k, when = self._kth_ref(fid)
            key = (has_k, when, fid)
            if best_key is None or key < best_key:
                best_key = key
                best = fid
        return best

    def _note_access(self, file_id: FileId, was_loaded: bool) -> None:
        self._clock += 1
        refs = self._refs.setdefault(file_id, deque(maxlen=self.k))
        refs.append(self._clock)

    def reset(self) -> None:
        super().reset()
        self._clock = 0
        self._refs.clear()

    def export_state(self) -> dict:
        return {
            "clock": self._clock,
            "refs": {fid: list(refs) for fid, refs in self._refs.items()},
        }

    def import_state(self, state: dict) -> None:
        self._clock = int(state["clock"])
        self._refs = {
            str(fid): deque((int(t) for t in refs), maxlen=self.k)
            for fid, refs in state["refs"].items()
        }
