"""Disk-cache substrate: cache state and the replacement-policy suite.

The simulator owns a :class:`~repro.cache.state.CacheState`; policies make
eviction decisions through the common
:class:`~repro.cache.policy.ReplacementPolicy` interface so that all
algorithms are measured under identical byte accounting.

Policies
--------
* :class:`~repro.cache.optbundle_policy.OptFileBundlePolicy` — the paper's
  bundle-aware algorithm (wraps :class:`repro.core.OptFileBundlePlanner`).
* :class:`~repro.cache.landlord.LandlordPolicy` — the paper's baseline
  (Algorithm 3; classic Landlord with cost = file size, credits in [0,1]).
* :class:`~repro.cache.lru.LRUPolicy`, :class:`~repro.cache.lfu.LFUPolicy`,
  :class:`~repro.cache.fifo.FIFOPolicy`,
  :class:`~repro.cache.random_policy.RandomPolicy`,
  :class:`~repro.cache.size_based.LargestFirstPolicy`,
  :class:`~repro.cache.gdsf.GDSFPolicy` — classic per-file baselines.
* :class:`~repro.cache.belady.BeladyPolicy` — offline farthest-next-use
  reference bound (needs the future trace).
"""

from repro.cache.state import CacheState
from repro.cache.policy import PolicyDecision, ReplacementPolicy, PerFilePolicy
from repro.cache.lru import LRUPolicy
from repro.cache.lruk import LRUKPolicy
from repro.cache.lfu import LFUPolicy
from repro.cache.fifo import FIFOPolicy
from repro.cache.random_policy import RandomPolicy
from repro.cache.size_based import LargestFirstPolicy
from repro.cache.gdsf import GDSFPolicy
from repro.cache.landlord import LandlordPolicy
from repro.cache.belady import BeladyPolicy
from repro.cache.optbundle_policy import OptFileBundlePolicy
from repro.cache.registry import POLICY_REGISTRY, make_policy

__all__ = [
    "CacheState",
    "PolicyDecision",
    "ReplacementPolicy",
    "PerFilePolicy",
    "LRUPolicy",
    "LRUKPolicy",
    "LFUPolicy",
    "FIFOPolicy",
    "RandomPolicy",
    "LargestFirstPolicy",
    "GDSFPolicy",
    "LandlordPolicy",
    "BeladyPolicy",
    "OptFileBundlePolicy",
    "POLICY_REGISTRY",
    "make_policy",
]
