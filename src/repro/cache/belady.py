"""Offline farthest-next-use replacement (Belady's MIN, bundle-adapted).

Given the *entire* future request sequence, evict the resident file whose
next use lies farthest in the future (never-used-again files first).  For
single-file unit-size requests this is Belady's optimal MIN; for bundles and
variable sizes it is a strong heuristic lower-bound reference, not provably
optimal (FBC is NP-hard even offline).  The paper does not evaluate an
offline policy; this is provided as an extension baseline.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Sequence

from repro.cache.policy import PerFilePolicy
from repro.core.bundle import FileBundle
from repro.errors import PolicyError
from repro.types import FileId

__all__ = ["BeladyPolicy"]

_NEVER = 1 << 62


class BeladyPolicy(PerFilePolicy):
    """Evict the file with the farthest next use in the known future."""

    name = "belady"

    def __init__(self, future: Sequence[FileBundle]) -> None:
        """``future`` is the full bundle sequence the simulator will replay."""
        super().__init__()
        self._occurrences: dict[FileId, list[int]] = {}
        for t, bundle in enumerate(future):
            for f in bundle:
                self._occurrences.setdefault(f, []).append(t)
        self._clock = -1  # index of the job currently being serviced

    def on_request(self, bundle: FileBundle):
        self._clock += 1
        return super().on_request(bundle)

    def _next_use(self, file_id: FileId) -> int:
        occ = self._occurrences.get(file_id)
        if not occ:
            return _NEVER
        i = bisect_right(occ, self._clock)
        return occ[i] if i < len(occ) else _NEVER

    def _pick_victim(self, exclude: frozenset[FileId]) -> FileId | None:
        best: FileId | None = None
        best_key: tuple[int, str] | None = None
        for fid in self.cache.residents():
            if fid in exclude:
                continue
            key = (self._next_use(fid), fid)
            if best_key is None or key > best_key:
                best_key = key
                best = fid
        return best

    def rewind(self) -> None:
        """Reset the clock for a fresh replay of the same future."""
        if self._cache is not None:
            raise PolicyError("rewind() requires an unbound policy")
        self._clock = -1

    def export_state(self) -> dict:
        # occurrences derive from the (replayable) future; only the clock
        # is genuinely mutable state
        return {"clock": self._clock}

    def import_state(self, state: dict) -> None:
        self._clock = int(state["clock"])
