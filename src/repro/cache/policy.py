"""The replacement-policy interface shared by all algorithms.

Contract
--------
The simulator drives a policy like this for every job::

    policy.bind(cache, sizes)            # once
    ...
    decision = policy.on_request(bundle) # policy evicts via the cache here
    # simulator verifies space, loads bundle's missing files + decision.prefetch
    policy.on_serviced(bundle, loaded, hit)

``on_request`` must leave enough free space for the bundle's missing files
plus any prefetch it asks for; it must never evict a file of the bundle
itself.  The simulator — not the policy — performs the loads, so byte
accounting is identical for every algorithm.

:class:`PerFilePolicy` factors the eviction loop common to the classical
per-file algorithms (LRU, LFU, FIFO, …): subclasses only implement victim
choice and bookkeeping hooks.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Mapping

from repro.cache.state import CacheState
from repro.core.bundle import FileBundle
from repro.errors import PolicyError
from repro.telemetry import FileEvicted, PlanComputed, current_recorder
from repro.telemetry.recorder import NULL_RECORDER, TraceRecorder
from repro.types import FileId, SizeBytes

__all__ = ["PolicyDecision", "ReplacementPolicy", "PerFilePolicy"]


@dataclass(frozen=True)
class PolicyDecision:
    """What a policy decided for one request.

    ``prefetch`` lists non-requested files the policy wants loaded as well
    (used by OptFileBundle under full-history truncation); ``evicted``
    reports the files the policy removed while making room.
    """

    prefetch: frozenset[FileId] = frozenset()
    evicted: frozenset[FileId] = frozenset()


class ReplacementPolicy(abc.ABC):
    """Abstract base class of all cache replacement policies."""

    #: short machine name used by the registry / CLI / result tables
    name: str = "abstract"

    def __init__(self) -> None:
        self._cache: CacheState | None = None
        self._sizes: Mapping[FileId, SizeBytes] | None = None
        self._recorder: TraceRecorder = NULL_RECORDER

    # ------------------------------------------------------------------ #

    def bind(self, cache: CacheState, sizes: Mapping[FileId, SizeBytes]) -> None:
        """Attach the policy to a cache and a file-size oracle (once).

        The ambient telemetry recorder is captured here (binding happens
        inside the simulator's recorder context), so per-decision events
        cost one attribute check when telemetry is off.
        """
        if self._cache is not None:
            raise PolicyError(f"policy {self.name!r} is already bound")
        self._cache = cache
        self._sizes = sizes
        self._recorder = current_recorder()

    @property
    def cache(self) -> CacheState:
        if self._cache is None:
            raise PolicyError(f"policy {self.name!r} is not bound to a cache")
        return self._cache

    @property
    def sizes(self) -> Mapping[FileId, SizeBytes]:
        if self._sizes is None:
            raise PolicyError(f"policy {self.name!r} is not bound to a cache")
        return self._sizes

    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def on_request(self, bundle: FileBundle) -> PolicyDecision:
        """Make room for the bundle's missing files (evicting via the cache)."""

    def on_serviced(
        self, bundle: FileBundle, loaded: frozenset[FileId], hit: bool
    ) -> None:
        """Notification that the request was serviced and files loaded."""

    def score(self, bundle: FileBundle) -> float | None:
        """Optional queue-scheduling priority of a bundle (higher first).

        Policies without a natural notion of request value return ``None``
        and the admission queue falls back to its non-policy disciplines.
        """
        return None

    @property
    def recorder(self) -> TraceRecorder:
        """The telemetry recorder captured at :meth:`bind` time."""
        return self._recorder

    def reset(self) -> None:
        """Detach from the cache so the policy object can be re-bound."""
        self._cache = None
        self._sizes = None
        self._recorder = NULL_RECORDER

    # ------------------------------------------------------------------ #
    # durable state (checkpoint/restore)

    def export_state(self) -> dict:
        """JSON-able snapshot of the policy's mutable decision state.

        The contract is exact restoration: constructing the same policy
        (same registry name and kwargs), binding it to a byte-identical
        cache, then :meth:`import_state`-ing this snapshot must reproduce
        every future decision the original object would have made —
        including heap tiebreak order.  Containers must round-trip
        through canonical JSON (string keys, no sets, exact floats).
        """
        return {}

    def import_state(self, state: dict) -> None:
        """Restore a snapshot from :meth:`export_state` (call after bind)."""
        if state:
            raise PolicyError(
                f"policy {self.name!r} carries no durable state but got "
                f"keys {sorted(state)}"
            )

    # ------------------------------------------------------------------ #
    # shared helpers

    def _needed_bytes(self, bundle: FileBundle) -> SizeBytes:
        missing = self.cache.missing(bundle)
        return sum(self.sizes[f] for f in missing)


class PerFilePolicy(ReplacementPolicy):
    """Base class for classical per-file policies.

    Implements ``on_request`` as: evict victims (never files of the current
    bundle) until the missing files fit.  Subclasses implement
    :meth:`_pick_victim` and may override the bookkeeping hooks
    :meth:`_note_evicted` / :meth:`_note_access`.
    """

    def on_request(self, bundle: FileBundle) -> PolicyDecision:
        cache = self.cache
        rec = self._recorder
        needed = self._needed_bytes(bundle)
        evicted: set[FileId] = set()
        pinned = cache.pinned_files()
        with rec.span("cache.evict"):
            while cache.free < needed:
                exclude = bundle.files | pinned if pinned else bundle.files
                victim = self._pick_victim(exclude)
                if victim is None:
                    raise PolicyError(
                        f"{self.name}: no evictable victim but "
                        f"{needed - cache.free} bytes still needed"
                    )
                if victim in bundle:
                    raise PolicyError(
                        f"{self.name}: attempted to evict requested file {victim!r}"
                    )
                if rec.active:
                    # detail must be read before the bookkeeping hook drops it
                    rec.emit(
                        FileEvicted(
                            file=str(victim),
                            bytes=self.sizes[victim],
                            policy=self.name,
                            detail=self._evict_detail(victim),
                        )
                    )
                cache.evict(victim)
                evicted.add(victim)
                self._note_evicted(victim)
        if rec.active:
            # Per-file policies never prefetch; loads is what the simulator
            # will admit for this bundle.  Emitting the same PlanComputed
            # event OptFileBundle emits keeps traces of *all* policies
            # alignable by the forensics diff tool.
            missing = cache.missing(bundle)
            rec.emit(
                PlanComputed(
                    policy=self.name,
                    loads=len(missing),
                    prefetches=0,
                    evictions=len(evicted),
                    hit=not missing,
                )
            )
        return PolicyDecision(evicted=frozenset(evicted))

    def on_serviced(
        self, bundle: FileBundle, loaded: frozenset[FileId], hit: bool
    ) -> None:
        for f in bundle:
            self._note_access(f, f in loaded)

    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def _pick_victim(self, exclude: frozenset[FileId]) -> FileId | None:
        """Choose a resident file outside ``exclude`` to evict (or None)."""

    def _note_evicted(self, file_id: FileId) -> None:
        """Bookkeeping hook: a victim left the cache."""

    def _note_access(self, file_id: FileId, was_loaded: bool) -> None:
        """Bookkeeping hook: a requested file was accessed (hit or load)."""

    def _evict_detail(self, file_id: FileId) -> dict | None:
        """Telemetry hook: the policy's rationale for evicting ``file_id``.

        Called just before the eviction (while per-file state is still
        present) and only when tracing is on.  Values must be
        deterministic functions of the simulation (no host state).
        """
        return None
