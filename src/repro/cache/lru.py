"""Least-Recently-Used replacement, bundle-adapted.

Servicing a job touches every file of its bundle; the victim is the
resident file whose last touch is oldest among files not in the current
bundle.  Classic single-file LRU is the special case of singleton bundles.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.policy import PerFilePolicy
from repro.types import FileId

__all__ = ["LRUPolicy"]


class LRUPolicy(PerFilePolicy):
    """Evict the least recently used file."""

    name = "lru"

    def __init__(self) -> None:
        super().__init__()
        self._order: OrderedDict[FileId, None] = OrderedDict()

    def _pick_victim(self, exclude: frozenset[FileId]) -> FileId | None:
        for fid in self._order:
            if fid not in exclude:
                return fid
        return None

    def _note_evicted(self, file_id: FileId) -> None:
        self._order.pop(file_id, None)

    def _note_access(self, file_id: FileId, was_loaded: bool) -> None:
        self._order.pop(file_id, None)
        self._order[file_id] = None

    def reset(self) -> None:
        super().reset()
        self._order.clear()

    def export_state(self) -> dict:
        return {"order": list(self._order)}

    def import_state(self, state: dict) -> None:
        self._order = OrderedDict((fid, None) for fid in state["order"])
