"""Greedy-Dual-Size-Frequency (GDSF) replacement.

The cost-aware web-caching policy of Cao–Irani [1] with the frequency
extension: each resident file carries a priority

    H(f) = L + freq(f) * cost(f) / size(f)

where ``L`` is the inflation value, raised to the victim's priority on each
eviction.  With ``cost(f) = size(f)`` (the byte-miss objective used
throughout the paper) the priority degenerates to ``L + freq(f)``.

[1] P. Cao, S. Irani, "Cost-aware WWW proxy caching algorithms", USITS'97.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.cache.policy import PerFilePolicy
from repro.types import FileId, SizeBytes

__all__ = ["GDSFPolicy"]


class GDSFPolicy(PerFilePolicy):
    """Evict the file with the lowest inflated frequency/cost priority."""

    name = "gdsf"

    def __init__(
        self, cost_fn: Callable[[FileId, SizeBytes], float] | None = None
    ) -> None:
        """``cost_fn(file_id, size)`` defaults to ``size`` (byte-miss cost)."""
        super().__init__()
        self._cost_fn = cost_fn if cost_fn is not None else (lambda _fid, size: size)
        self._inflation = 0.0
        self._freq: dict[FileId, int] = {}
        self._priority: dict[FileId, float] = {}
        self._heap: list[tuple[float, int, FileId]] = []
        # plain int (not itertools.count) so checkpoints can export it
        self._tiebreak = 0

    def _push(self, file_id: FileId) -> None:
        size = self.sizes[file_id]
        prio = self._inflation + self._freq[file_id] * self._cost_fn(file_id, size) / size
        self._priority[file_id] = prio
        tb = self._tiebreak
        self._tiebreak += 1
        heapq.heappush(self._heap, (prio, tb, file_id))

    def _pick_victim(self, exclude: frozenset[FileId]) -> FileId | None:
        cache = self.cache
        deferred: list[tuple[float, int, FileId]] = []
        victim: FileId | None = None
        while self._heap:
            prio, tb, fid = heapq.heappop(self._heap)
            if fid not in cache or self._priority.get(fid) != prio:
                continue
            if fid in exclude:
                deferred.append((prio, tb, fid))
                continue
            victim = fid
            self._inflation = prio
            break
        for entry in deferred:
            heapq.heappush(self._heap, entry)
        return victim

    def _note_evicted(self, file_id: FileId) -> None:
        self._priority.pop(file_id, None)

    def _note_access(self, file_id: FileId, was_loaded: bool) -> None:
        self._freq[file_id] = self._freq.get(file_id, 0) + 1
        self._push(file_id)

    def reset(self) -> None:
        super().reset()
        self._inflation = 0.0
        self._freq.clear()
        self._priority.clear()
        self._heap.clear()

    def export_state(self) -> dict:
        return {
            "inflation": self._inflation,
            "freq": dict(self._freq),
            "priority": dict(self._priority),
            "heap": [list(entry) for entry in self._heap],
            "tiebreak": self._tiebreak,
        }

    def import_state(self, state: dict) -> None:
        self._inflation = float(state["inflation"])
        self._freq = {str(f): int(n) for f, n in state["freq"].items()}
        self._priority = {str(f): float(p) for f, p in state["priority"].items()}
        self._heap = [
            (float(p), int(tb), str(fid)) for p, tb, fid in state["heap"]
        ]
        self._tiebreak = int(state["tiebreak"])
