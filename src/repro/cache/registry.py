"""Name → policy factory registry used by experiments and the CLI."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cache.belady import BeladyPolicy
from repro.cache.fifo import FIFOPolicy
from repro.cache.gdsf import GDSFPolicy
from repro.cache.landlord import LandlordPolicy
from repro.cache.lfu import LFUPolicy
from repro.cache.lru import LRUPolicy
from repro.cache.lruk import LRUKPolicy
from repro.cache.optbundle_policy import OptFileBundlePolicy
from repro.cache.policy import ReplacementPolicy
from repro.cache.random_policy import RandomPolicy
from repro.cache.size_based import LargestFirstPolicy
from repro.core.bundle import FileBundle
from repro.errors import ConfigError

__all__ = ["POLICY_REGISTRY", "make_policy"]

POLICY_REGISTRY: dict[str, type[ReplacementPolicy]] = {
    LRUPolicy.name: LRUPolicy,
    LRUKPolicy.name: LRUKPolicy,
    LFUPolicy.name: LFUPolicy,
    FIFOPolicy.name: FIFOPolicy,
    RandomPolicy.name: RandomPolicy,
    LargestFirstPolicy.name: LargestFirstPolicy,
    GDSFPolicy.name: GDSFPolicy,
    LandlordPolicy.name: LandlordPolicy,
    BeladyPolicy.name: BeladyPolicy,
    OptFileBundlePolicy.name: OptFileBundlePolicy,
}


def make_policy(
    name: str,
    *,
    future: Sequence[FileBundle] | None = None,
    rng: np.random.Generator | None = None,
    **kwargs,
) -> ReplacementPolicy:
    """Instantiate a policy by registry name.

    ``future`` is required for (and only consumed by) ``belady``; ``rng``
    seeds ``random``.  Remaining keyword arguments are passed through to the
    policy constructor (e.g. ``truncation=`` for ``optbundle``).
    """
    try:
        cls = POLICY_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(POLICY_REGISTRY))
        raise ConfigError(f"unknown policy {name!r}; known: {known}") from None
    if cls is BeladyPolicy:
        if future is None:
            raise ConfigError("belady policy requires future=<bundle sequence>")
        return BeladyPolicy(future, **kwargs)
    if cls is RandomPolicy:
        if rng is None and "seed" not in kwargs:
            # The documented default stream of the memoryless baseline.
            # Registry defaults are the one sanctioned home for a
            # hard-coded seed (RPR002 allowlists this file); it preserves
            # the historical default_rng(0) victim sequence so results
            # recorded before the explicit-seed requirement stay
            # comparable.
            rng = np.random.default_rng(0)
        return RandomPolicy(rng=rng, **kwargs)
    return cls(**kwargs)
