"""Cache occupancy state with exact byte accounting.

:class:`CacheState` is the single source of truth for what is resident and
how many bytes were moved.  Policies mutate it only through
:meth:`load` / :meth:`evict`, which maintain the invariants

* ``used == sum(size of residents)``,
* ``0 <= used <= capacity``,
* a file is resident at most once,

and accumulate the load/eviction counters the metrics layer reads.
"""

from __future__ import annotations

from typing import Iterable, KeysView

from repro.core.bundle import FileBundle
from repro.errors import (
    CacheCapacityError,
    ConfigError,
    DuplicateFileError,
    StateInvariantError,
    UnknownFileError,
)
from repro.types import FileId, SizeBytes

__all__ = ["CacheState"]


class CacheState:
    """A fixed-capacity disk cache holding whole files.

    Parameters
    ----------
    capacity:
        Cache size ``s(C)`` in bytes (positive).
    """

    __slots__ = (
        "_capacity",
        "_resident",
        "_used",
        "_pins",
        "_reserved",
        "load_count",
        "evict_count",
        "bytes_loaded",
        "bytes_evicted",
    )

    def __init__(self, capacity: SizeBytes):
        if capacity <= 0:
            raise ConfigError(f"cache capacity must be positive, got {capacity}")
        self._capacity: SizeBytes = int(capacity)
        self._resident: dict[FileId, SizeBytes] = {}
        self._used: SizeBytes = 0
        # SRM-style pinning: reference counts of files in use by jobs, and
        # byte reservations for in-flight staging.  Pinned files cannot be
        # evicted; reserved bytes are not available for new reservations.
        self._pins: dict[FileId, int] = {}
        self._reserved: SizeBytes = 0
        self.load_count: int = 0
        self.evict_count: int = 0
        self.bytes_loaded: SizeBytes = 0
        self.bytes_evicted: SizeBytes = 0

    # ------------------------------------------------------------------ #
    # mutation

    def load(self, file_id: FileId, size: SizeBytes) -> None:
        """Bring a file into the cache.

        Raises :class:`DuplicateFileError` if already resident and
        :class:`CacheCapacityError` if it does not fit.
        """
        if size <= 0:
            raise ConfigError(f"file size must be positive, got {size}")
        if file_id in self._resident:
            raise DuplicateFileError(f"file {file_id!r} is already resident")
        if self._used + size > self._capacity:
            raise CacheCapacityError(size, self._capacity - self._used)
        self._resident[file_id] = size
        self._used += size
        self.load_count += 1
        self.bytes_loaded += size

    def evict(self, file_id: FileId) -> SizeBytes:
        """Remove a resident file; returns its size.

        Raises :class:`UnknownFileError` if the file is not resident and
        :class:`~repro.errors.PolicyError` if it is pinned.
        """
        if self._pins.get(file_id, 0) > 0:
            from repro.errors import PolicyError

            raise PolicyError(f"file {file_id!r} is pinned and cannot be evicted")
        try:
            size = self._resident.pop(file_id)
        except KeyError:
            raise UnknownFileError(f"file {file_id!r} is not resident") from None
        self._used -= size
        self.evict_count += 1
        self.bytes_evicted += size
        return size

    # ------------------------------------------------------------------ #
    # pinning and reservations (SRM semantics)

    def pin(self, file_id: FileId) -> None:
        """Pin a resident file against eviction (reference counted)."""
        if file_id not in self._resident:
            raise UnknownFileError(f"file {file_id!r} is not resident")
        self._pins[file_id] = self._pins.get(file_id, 0) + 1

    def unpin(self, file_id: FileId) -> None:
        """Release one pin of a file."""
        count = self._pins.get(file_id, 0)
        if count <= 0:
            raise UnknownFileError(f"file {file_id!r} is not pinned")
        if count == 1:
            del self._pins[file_id]
        else:
            self._pins[file_id] = count - 1

    def is_pinned(self, file_id: FileId) -> bool:
        return self._pins.get(file_id, 0) > 0

    def pinned_files(self) -> frozenset[FileId]:
        return frozenset(self._pins)

    def reserve(self, nbytes: SizeBytes) -> None:
        """Reserve free space for in-flight staging (release when loaded)."""
        if nbytes < 0:
            raise ConfigError(f"reservation must be non-negative, got {nbytes}")
        if self._used + self._reserved + nbytes > self._capacity:
            raise CacheCapacityError(
                nbytes, self._capacity - self._used - self._reserved
            )
        self._reserved += nbytes

    def release(self, nbytes: SizeBytes) -> None:
        """Release a reservation (typically when the staged file lands)."""
        if nbytes < 0 or nbytes > self._reserved:
            raise ConfigError(
                f"cannot release {nbytes} of {self._reserved} reserved bytes"
            )
        self._reserved -= nbytes

    @property
    def reserved(self) -> SizeBytes:
        return self._reserved

    @property
    def available(self) -> SizeBytes:
        """Free bytes not claimed by reservations."""
        return self._capacity - self._used - self._reserved

    # ------------------------------------------------------------------ #
    # queries

    @property
    def capacity(self) -> SizeBytes:
        return self._capacity

    @property
    def used(self) -> SizeBytes:
        """Bytes currently occupied."""
        return self._used

    @property
    def free(self) -> SizeBytes:
        """Bytes currently available."""
        return self._capacity - self._used

    def __contains__(self, file_id: object) -> bool:
        return file_id in self._resident

    def __len__(self) -> int:
        return len(self._resident)

    def residents(self) -> KeysView[FileId]:
        """A live view of resident file ids."""
        return self._resident.keys()

    def size_of(self, file_id: FileId) -> SizeBytes:
        """Size of a resident file."""
        try:
            return self._resident[file_id]
        except KeyError:
            raise UnknownFileError(f"file {file_id!r} is not resident") from None

    def missing(self, bundle: FileBundle) -> frozenset[FileId]:
        """The bundle's files that are not resident."""
        return bundle.missing_from(self._resident)

    def supports(self, bundle: FileBundle) -> bool:
        """True when all files of the bundle are resident (a request-hit)."""
        return bundle.issubset(self._resident.keys())

    def resident_bytes(self, file_ids: Iterable[FileId]) -> SizeBytes:
        """Total size of the given files that are resident."""
        res = self._resident
        return sum(res[f] for f in file_ids if f in res)

    # ------------------------------------------------------------------ #
    # durable state (checkpoint/restore)

    def export_state(self) -> dict:
        """JSON-able snapshot of residency (in insertion order) + counters."""
        return {
            "capacity": self._capacity,
            "resident": [[fid, size] for fid, size in self._resident.items()],
            "pins": dict(self._pins),
            "reserved": self._reserved,
            "load_count": self.load_count,
            "evict_count": self.evict_count,
            "bytes_loaded": self.bytes_loaded,
            "bytes_evicted": self.bytes_evicted,
        }

    @classmethod
    def restore(cls, state: dict) -> "CacheState":
        """Rebuild a cache from an :meth:`export_state` snapshot.

        Residency insertion order is preserved (``residents()`` iteration
        order feeds policy victim scans), and the byte counters resume
        exactly, so post-restore accounting matches an uninterrupted run.
        """
        cache = cls(int(state["capacity"]))
        for fid, size in state["resident"]:
            cache._resident[str(fid)] = int(size)
        cache._used = sum(cache._resident.values())
        cache._pins = {str(f): int(n) for f, n in state["pins"].items()}
        cache._reserved = int(state["reserved"])
        cache.load_count = int(state["load_count"])
        cache.evict_count = int(state["evict_count"])
        cache.bytes_loaded = int(state["bytes_loaded"])
        cache.bytes_evicted = int(state["bytes_evicted"])
        cache.check_invariants()
        return cache

    def check_invariants(self) -> None:
        """Assert internal consistency (used by tests and debug runs).

        Raises :class:`~repro.errors.StateInvariantError` (an
        ``AssertionError`` subclass, preserving the historical contract).
        """
        total = sum(self._resident.values())
        if total != self._used:
            raise StateInvariantError(
                f"used={self._used} but residents sum to {total}"
            )
        if not (0 <= self._used <= self._capacity):
            raise StateInvariantError(
                f"used={self._used} outside [0, {self._capacity}]"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CacheState(capacity={self._capacity}, used={self._used}, "
            f"files={len(self._resident)})"
        )
