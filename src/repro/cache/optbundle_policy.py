"""Policy adapter wiring :class:`OptFileBundlePlanner` into the simulator.

Translates the planner's :class:`~repro.core.optfilebundle.LoadPlan` into
the :class:`~repro.cache.policy.ReplacementPolicy` contract: evictions are
applied to the cache inside :meth:`on_request`, prefetches are handed back
to the simulator, and the history commit happens in :meth:`on_serviced`
(Algorithm 2's Step 4 — after the request was actually served).
"""

from __future__ import annotations

from typing import Mapping

from repro.cache.policy import PolicyDecision, ReplacementPolicy
from repro.cache.state import CacheState
from repro.core.bundle import FileBundle
from repro.core.history import RequestHistory, TruncationMode
from repro.core.optfilebundle import LoadPlan, OptFileBundlePlanner
from repro.errors import PolicyError
from repro.telemetry import FileEvicted, PlanComputed
from repro.types import FileId, SizeBytes

__all__ = ["OptFileBundlePolicy"]


class OptFileBundlePolicy(ReplacementPolicy):
    """The paper's OptFileBundle algorithm behind the policy interface.

    Keyword arguments mirror :class:`OptFileBundlePlanner`; see there for
    semantics of ``truncation``/``window``/``refine``/``safeguard``/
    ``decay``/``eager_evict``.
    """

    name = "optbundle"

    def __init__(
        self,
        *,
        truncation: TruncationMode = TruncationMode.CACHE_SUPPORTED,
        window: int | None = None,
        refine: bool = True,
        safeguard: bool = True,
        decay: float = 1.0,
        eager_evict: bool = False,
        degree_blind: bool = False,
        incremental: bool = True,
    ) -> None:
        super().__init__()
        self._planner_kwargs = dict(
            truncation=truncation,
            window=window,
            refine=refine,
            safeguard=safeguard,
            decay=decay,
            eager_evict=eager_evict,
            degree_blind=degree_blind,
            incremental=incremental,
        )
        self._planner: OptFileBundlePlanner | None = None
        self._last_plan: LoadPlan | None = None

    def bind(self, cache: CacheState, sizes: Mapping[FileId, SizeBytes]) -> None:
        super().bind(cache, sizes)
        self._planner = OptFileBundlePlanner(
            cache.capacity, sizes, **self._planner_kwargs
        )
        self._planner.history.sync_resident(cache.residents())

    @property
    def planner(self) -> OptFileBundlePlanner:
        if self._planner is None:
            raise PolicyError("optbundle policy is not bound to a cache")
        return self._planner

    @property
    def history(self) -> RequestHistory:
        return self.planner.history

    # ------------------------------------------------------------------ #

    def on_request(self, bundle: FileBundle) -> PolicyDecision:
        plan = self.planner.plan(
            bundle,
            set(self.cache.residents()),
            pinned=self.cache.pinned_files(),
        )
        rec = self._recorder
        if rec.active:
            degree = self.planner.history.degree
            for f in sorted(plan.evict):
                # degree is read pre-commit: the candidate support that
                # justified dropping f, before this arrival re-records it
                rec.emit(
                    FileEvicted(
                        file=str(f),
                        bytes=self.sizes[f],
                        policy=self.name,
                        detail={"degree": degree(f)},
                    )
                )
            rec.emit(
                PlanComputed(
                    policy=self.name,
                    loads=len(plan.load),
                    prefetches=len(plan.prefetch),
                    evictions=len(plan.evict),
                    hit=plan.request_hit,
                )
            )
        with rec.span("cache.evict"):
            for f in plan.evict:
                self.cache.evict(f)
        # Commit (Algorithm 2 Step 4) immediately: the decision was taken
        # against the pre-record history either way, and committing here
        # keeps the history's resident view correct when a timed SRM
        # pipelines the next request's decision before this job completes.
        self.planner.commit(plan)
        self._last_plan = plan
        return PolicyDecision(prefetch=plan.prefetch, evicted=plan.evict)

    def on_serviced(
        self, bundle: FileBundle, loaded: frozenset[FileId], hit: bool
    ) -> None:
        """No-op: the plan was already committed in :meth:`on_request`."""

    @property
    def last_plan(self) -> LoadPlan | None:
        """The most recent load plan (observability/debugging aid)."""
        return self._last_plan

    def score(self, bundle: FileBundle) -> float | None:
        return self.planner.score(bundle)

    def reset(self) -> None:
        super().reset()
        self._planner = None
        self._last_plan = None

    def export_state(self) -> dict:
        # the planner's only mutable state is its history (the selection
        # state is derived and rebuilt on adopt_history)
        return {"history": self.planner.history.export_state()}

    def import_state(self, state: dict) -> None:
        self.planner.adopt_history(RequestHistory.restore(state["history"]))
