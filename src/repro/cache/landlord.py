"""Landlord cache replacement, bundle-adapted (Algorithm 3 of the paper).

Landlord (Young 1998) charges "rent" to cached files: every file holds a
credit; when space is needed the minimum per-byte credit among files *not
requested by the current job* is subtracted from everyone and zero-credit
files are evicted; loaded (and re-referenced) files have their credit reset.

The paper instantiates Landlord with retrieval cost proportional to file
size, which makes the normalized credit ``credit(f)/size(f)`` live in
``[0, 1]``, refreshed to 1 — exactly Algorithm 3's description.  The
implementation below keeps that normalized credit per file and uses the
standard *inflation offset* trick so each eviction is O(log n) instead of a
linear "subtract the minimum from everyone" sweep:

    effective_credit(f) = stored(f) − offset

Evicting the minimum-credit file sets ``offset`` to its stored value (its
effective credit hits 0); refreshing stores ``offset + cost(f)/size(f)``.

A ``cost_fn`` hook supports other cost models (e.g. uniform cost per file,
which optimizes request counts instead of bytes).

Note
----
With cost proportional to size, every refresh restores the same normalized
credit (1), each eviction round subtracts the same amount from every
cached file, and the victim is therefore always the least-recently-
refreshed file: *Landlord with cost = size is exactly file-level LRU in
eviction order* (the classical Greedy-Dual identity, cf. Cao–Irani).  The
simulations bear this out — ``landlord`` and ``lru`` produce identical
byte miss ratios under the paper's cost model — so the paper's Landlord
baseline is, in effect, a bundle-adapted LRU.  Distinct behaviour appears
only under non-proportional ``cost_fn`` settings.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.cache.policy import PerFilePolicy
from repro.types import FileId, SizeBytes

__all__ = ["LandlordPolicy"]


class LandlordPolicy(PerFilePolicy):
    """Bundle-adapted Landlord with cost = file size by default."""

    name = "landlord"

    def __init__(
        self, cost_fn: Callable[[FileId, SizeBytes], float] | None = None
    ) -> None:
        """``cost_fn(file_id, size)`` defaults to ``size`` (paper setting)."""
        super().__init__()
        self._cost_fn = cost_fn if cost_fn is not None else (lambda _fid, size: size)
        self._offset = 0.0
        self._stored: dict[FileId, float] = {}
        # Per-file version stamps make refreshed heap entries detectable
        # even when the stored credit value is unchanged (with cost = size
        # every credit is exactly 1, so value comparison cannot tell a
        # refresh from a stale entry).  Ties in credit are thus broken by
        # recency of refresh — a valid Landlord tie-break that keeps the
        # baseline from degenerating to insertion order.
        self._version: dict[FileId, int] = {}
        self._heap: list[tuple[float, int, FileId, int]] = []
        # plain int (not itertools.count) so checkpoints can export it
        self._tiebreak = 0

    # ------------------------------------------------------------------ #

    def credit(self, file_id: FileId) -> float:
        """Current effective (normalized) credit of a resident file."""
        return self._stored[file_id] - self._offset

    def _refresh(self, file_id: FileId) -> None:
        size = self.sizes[file_id]
        stored = self._offset + self._cost_fn(file_id, size) / size
        self._stored[file_id] = stored
        version = self._tiebreak
        self._tiebreak += 1
        self._version[file_id] = version
        heapq.heappush(self._heap, (stored, version, file_id, version))

    def _pick_victim(self, exclude: frozenset[FileId]) -> FileId | None:
        cache = self.cache
        deferred: list[tuple[float, int, FileId, int]] = []
        victim: FileId | None = None
        while self._heap:
            stored, tb, fid, version = heapq.heappop(self._heap)
            if fid not in cache or self._version.get(fid) != version:
                continue
            if fid in exclude:
                deferred.append((stored, tb, fid, version))
                continue
            victim = fid
            # The victim's effective credit reaches 0; everyone else is
            # implicitly decremented by the same amount (Step 3).
            self._offset = stored
            break
        for entry in deferred:
            heapq.heappush(self._heap, entry)
        return victim

    def _note_evicted(self, file_id: FileId) -> None:
        self._stored.pop(file_id, None)
        self._version.pop(file_id, None)

    def _evict_detail(self, file_id: FileId) -> dict | None:
        # The victim's effective credit and the global stamp of its last
        # credit refresh (lower = refreshed longer ago) — under the
        # paper's cost = size model the minimum stamp IS the LRU victim,
        # which is what a trace reader needs to explain a Landlord choice.
        return {
            "credit": self.credit(file_id),
            "last_refresh": self._version.get(file_id, -1),
        }

    def _note_access(self, file_id: FileId, was_loaded: bool) -> None:
        # Step 4: loaded files get full credit; re-referenced files are
        # refreshed to full credit as well (Landlord permits any value up to
        # full; the paper resets to 1).
        self._refresh(file_id)

    def reset(self) -> None:
        super().reset()
        self._offset = 0.0
        self._stored.clear()
        self._version.clear()
        self._heap.clear()

    def export_state(self) -> dict:
        return {
            "offset": self._offset,
            "stored": dict(self._stored),
            "version": dict(self._version),
            "heap": [list(entry) for entry in self._heap],
            "tiebreak": self._tiebreak,
        }

    def import_state(self, state: dict) -> None:
        self._offset = float(state["offset"])
        self._stored = {str(f): float(c) for f, c in state["stored"].items()}
        self._version = {str(f): int(v) for f, v in state["version"].items()}
        self._heap = [
            (float(s), int(tb), str(fid), int(v))
            for s, tb, fid, v in state["heap"]
        ]
        self._tiebreak = int(state["tiebreak"])
