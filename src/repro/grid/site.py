"""Multi-site data grid: replica locations and source selection.

Files in a data grid are replicated across sites (Section 2); when an SRM
must stage a missing file it picks the cheapest source — the site whose
storage and link deliver the file soonest under the first-order cost model
``mount + size/drive_bw + link_latency + size/link_bw``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, UnknownFileError
from repro.grid.mss import MassStorageSystem
from repro.grid.network import NetworkLink
from repro.sim.engine import EventEngine
from repro.types import FileId, SizeBytes

__all__ = ["DataGridSite", "ReplicaCatalog"]


@dataclass
class DataGridSite:
    """A storage site: an MSS plus the WAN link towards the SRM host."""

    name: str
    mss: MassStorageSystem
    link: NetworkLink

    def estimated_fetch_time(self, size: SizeBytes) -> float:
        """First-order staging estimate ignoring queueing at the drives."""
        return self.mss.retrieval_time(size) + self.link.transfer_time(size)

    @staticmethod
    def build(
        engine: EventEngine,
        name: str,
        *,
        n_drives: int = 4,
        mount_latency: float = 20.0,
        drive_bandwidth: float = 60 * 1024 * 1024,
        link: NetworkLink | None = None,
    ) -> "DataGridSite":
        return DataGridSite(
            name=name,
            mss=MassStorageSystem(
                engine,
                n_drives=n_drives,
                mount_latency=mount_latency,
                drive_bandwidth=drive_bandwidth,
                name=name,
            ),
            link=link if link is not None else NetworkLink(),
        )


class ReplicaCatalog:
    """Which sites hold a replica of which file."""

    def __init__(self) -> None:
        self._sites: dict[str, DataGridSite] = {}
        self._replicas: dict[FileId, list[str]] = {}

    def add_site(self, site: DataGridSite) -> None:
        if site.name in self._sites:
            raise ConfigError(f"site {site.name!r} already registered")
        self._sites[site.name] = site

    def sites(self) -> list[DataGridSite]:
        return list(self._sites.values())

    def site(self, name: str) -> DataGridSite:
        try:
            return self._sites[name]
        except KeyError:
            raise ConfigError(f"unknown site {name!r}") from None

    def add_replica(self, file_id: FileId, site_name: str) -> None:
        if site_name not in self._sites:
            raise ConfigError(f"unknown site {site_name!r}")
        locations = self._replicas.setdefault(file_id, [])
        if site_name not in locations:
            locations.append(site_name)

    def locations(self, file_id: FileId) -> list[str]:
        return list(self._replicas.get(file_id, ()))

    def best_source(
        self,
        file_id: FileId,
        size: SizeBytes,
        *,
        exclude: frozenset[str] | set[str] = frozenset(),
    ) -> DataGridSite:
        """The site expected to deliver the file soonest.

        Queueing-aware: the estimate adds the work currently queued before
        the file at each site (queued retrievals over available drives).

        ``exclude`` names sites to skip — the SRM's failover path passes
        the sites currently marked down.  If *every* replica holder is
        excluded the exclusion is ignored (the caller's retry/backoff
        machinery absorbs the cost of talking to a dead site), so source
        resolution always makes progress.
        """
        names = self._replicas.get(file_id)
        if not names:
            raise UnknownFileError(f"no replica registered for file {file_id!r}")
        candidates = [n for n in names if n not in exclude] or names
        best_site: DataGridSite | None = None
        best_cost = float("inf")
        for name in candidates:
            site = self._sites[name]
            backlog = site.mss.queued / site.mss.n_drives * site.mss.mount_latency
            cost = site.estimated_fetch_time(size) + backlog
            if cost < best_cost:
                best_cost = cost
                best_site = site
        assert best_site is not None
        return best_site
