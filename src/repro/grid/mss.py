"""Mass Storage System model: tape-backed retrieval with limited drives.

An MSS serves file retrievals through a fixed number of drives.  Each
retrieval costs a mount latency plus size-proportional read time; requests
beyond the drive count queue FCFS.  This reproduces the dominant costs an
SRM masks from its clients (Section 1): high fixed per-file latency and
serialised deep-storage bandwidth.

With a :class:`~repro.faults.FaultInjector` attached, retrievals may fail
partway through their service time (a bad mount or drive drop): the drive
stays busy for the elapsed fraction, then the caller's failure callback
fires instead of the success callback.  Callers that do not pass a
failure callback are served as if the fault had not occurred, so legacy
call sites are unaffected.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

from repro.errors import ConfigError
from repro.sim.engine import EventEngine
from repro.types import MB, FileId, SizeBytes

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults import FaultInjector

__all__ = ["MassStorageSystem"]

RetrievalCallback = Callable[[FileId], None]


class MassStorageSystem:
    """FCFS multi-drive mass storage attached to an event engine."""

    def __init__(
        self,
        engine: EventEngine,
        *,
        n_drives: int = 4,
        mount_latency: float = 20.0,
        drive_bandwidth: float = 60 * MB,
        name: str = "mss",
        injector: "FaultInjector | None" = None,
    ):
        if n_drives <= 0:
            raise ConfigError(f"n_drives must be positive, got {n_drives}")
        if mount_latency < 0:
            raise ConfigError(f"mount_latency must be non-negative, got {mount_latency}")
        if drive_bandwidth <= 0:
            raise ConfigError(f"drive_bandwidth must be positive, got {drive_bandwidth}")
        self.engine = engine
        self.n_drives = n_drives
        self.mount_latency = mount_latency
        self.drive_bandwidth = drive_bandwidth
        self.name = name
        self.injector = injector
        self._busy = 0
        self._pending: deque[
            tuple[FileId, SizeBytes, RetrievalCallback, RetrievalCallback | None]
        ] = deque()
        self.retrievals = 0
        self.failed_retrievals = 0
        self.bytes_retrieved: SizeBytes = 0
        self.total_busy_time = 0.0

    # ------------------------------------------------------------------ #

    def retrieval_time(self, size: SizeBytes) -> float:
        """Drive-occupancy seconds for one file of ``size`` bytes."""
        return self.mount_latency + size / self.drive_bandwidth

    @property
    def busy_drives(self) -> int:
        return self._busy

    @property
    def queued(self) -> int:
        return len(self._pending)

    def retrieve(
        self,
        file_id: FileId,
        size: SizeBytes,
        callback: RetrievalCallback,
        on_failure: RetrievalCallback | None = None,
    ) -> None:
        """Request a file; ``callback(file_id)`` fires when it is read.

        With an injector attached and ``on_failure`` given, a drive fault
        makes ``on_failure(file_id)`` fire instead, after the failed
        fraction of the service time has elapsed on the drive.
        """
        if size <= 0:
            raise ConfigError(f"file size must be positive, got {size}")
        self._pending.append((file_id, size, callback, on_failure))
        self._dispatch()

    # ------------------------------------------------------------------ #

    def _dispatch(self) -> None:
        while self._busy < self.n_drives and self._pending:
            file_id, size, callback, on_failure = self._pending.popleft()
            self._busy += 1
            service = self.retrieval_time(size)

            fail_fraction: float | None = None
            if self.injector is not None and on_failure is not None:
                fail_fraction = self.injector.drive_fault(self.name)

            if fail_fraction is not None:
                service *= fail_fraction
                self.failed_retrievals += 1
                done_cb = on_failure
            else:
                self.retrievals += 1
                self.bytes_retrieved += size
                done_cb = callback
            self.total_busy_time += service

            def _done(
                fid: FileId = file_id, cb: RetrievalCallback = done_cb
            ) -> None:
                self._busy -= 1
                cb(fid)
                self._dispatch()

            self.engine.schedule(service, _done)
