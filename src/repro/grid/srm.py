"""Timed Storage-Resource-Manager simulation.

Jobs arrive at simulated times.  The SRM services bundles
*one-bundle-at-a-time* on the staging side — exactly the paper's service
model — while up to ``service_slots`` jobs may be in their compute phase
concurrently.  Starting a job pins its files (an SRM's core contract:
files a job depends on are never evicted mid-service); the replacement
policy therefore never sees pinned files as eviction victims, and a job
whose start is blocked by other jobs' pins waits until a completion
releases them.

Fault tolerance
---------------
With ``SRMConfig.faults`` set, the grid components the SRM drives can
fail (see :mod:`repro.faults`): tape retrievals abort, WAN transfers die
mid-flight or spike in latency, replica sites go down.  The staging
pipeline absorbs these instead of crashing: each file staging attempt is
retried with capped exponential backoff plus deterministic jitter, an
optional per-file ``staging_timeout`` bounds how long one attempt may
hang, and each retry re-resolves the best replica source *excluding
sites currently down* (failover).  A job whose file exhausts its retry
budget is requeued once; a second exhaustion counts it in
``failed_jobs``.  All robustness events are reported on
:class:`SRMResult` (``retries``, ``failovers``, ``timeouts``,
``failed_jobs``, ``time_lost_to_faults``).

Reported quantities are job **response time** (completion − arrival),
**throughput** and bytes staged — the timed face of the same trade-off the
byte-miss experiments measure: a policy that keeps the right file
*combinations* resident stages less and turns jobs around faster.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.cache.registry import make_policy
from repro.cache.state import CacheState
from repro.core.bundle import FileBundle
from repro.core.request import Request
from repro.errors import (
    CacheCapacityError,
    ConfigError,
    PolicyError,
    RetryExhaustedError,
    SimulationError,
    StagingTimeoutError,
    UnknownFileError,
)
from repro.faults import FaultInjector, FaultSpec
from repro.grid.mss import MassStorageSystem
from repro.grid.network import NetworkLink
from repro.grid.site import ReplicaCatalog
from repro.sim.engine import EventEngine
from repro.telemetry import (
    MetricsRegistry,
    StageCompleted,
    StageFailedOver,
    StageRetried,
    StageStarted,
    current_recorder,
    use_recorder,
)
from repro.telemetry.recorder import TraceRecorder
from repro.types import MB, FileId, SizeBytes
from repro.workload.trace import Trace

__all__ = ["SRMConfig", "SRMResult", "StorageResourceManager", "run_timed_simulation"]

#: Upper bound on retained fault-log entries (observability, not accounting).
_FAULT_LOG_LIMIT = 200

#: simulated response times: 0.1 s .. ~30 000 s, half-decade steps
_RESPONSE_TIME_BUCKETS: tuple[float, ...] = tuple(
    0.1 * (10 ** (i / 2)) for i in range(12)
)


@dataclass(frozen=True)
class SRMConfig:
    """Parameters of a timed SRM run."""

    cache_size: SizeBytes
    policy: str = "optbundle"
    policy_kwargs: dict[str, Any] = field(default_factory=dict)
    n_drives: int = 4
    mount_latency: float = 20.0
    drive_bandwidth: float = 60 * MB
    link: NetworkLink = field(default_factory=NetworkLink)
    processing_time: float = 1.0
    service_slots: int = 1
    faults: FaultSpec | None = None
    max_retries: int = 3
    retry_backoff: float = 2.0
    backoff_cap: float = 60.0
    backoff_jitter: float = 0.1
    staging_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.cache_size <= 0:
            raise ConfigError(f"cache_size must be positive, got {self.cache_size}")
        if self.processing_time < 0:
            raise ConfigError(
                f"processing_time must be non-negative, got {self.processing_time}"
            )
        if self.service_slots < 1:
            raise ConfigError(
                f"service_slots must be >= 1, got {self.service_slots}"
            )
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_backoff <= 0:
            raise ConfigError(
                f"retry_backoff must be positive, got {self.retry_backoff}"
            )
        if self.backoff_cap < self.retry_backoff:
            raise ConfigError(
                f"backoff_cap must be >= retry_backoff, got {self.backoff_cap}"
            )
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ConfigError(
                f"backoff_jitter must be in [0, 1], got {self.backoff_jitter}"
            )
        if self.staging_timeout is not None and self.staging_timeout <= 0:
            raise ConfigError(
                f"staging_timeout must be positive, got {self.staging_timeout}"
            )


@dataclass(frozen=True)
class SRMResult:
    """Outcome of :func:`run_timed_simulation`."""

    policy: str
    jobs: int
    unserviceable: int
    makespan: float
    mean_response_time: float
    max_response_time: float
    throughput: float
    bytes_staged: SizeBytes
    request_hits: int
    bytes_requested: SizeBytes = 0
    deferred_starts: int = 0
    retries: int = 0
    failovers: int = 0
    timeouts: int = 0
    requeues: int = 0
    failed_jobs: int = 0
    time_lost_to_faults: float = 0.0

    @property
    def request_hit_ratio(self) -> float:
        return self.request_hits / self.jobs if self.jobs else 0.0

    @property
    def byte_miss_ratio(self) -> float:
        """Bytes staged over bytes requested by completed jobs.

        The timed analogue of the untimed simulator's byte miss ratio;
        staging for jobs that later failed is included in the numerator,
        so under heavy faults this slightly overstates the miss cost.
        """
        return (
            self.bytes_staged / self.bytes_requested if self.bytes_requested else 0.0
        )

    def as_dict(self) -> dict:
        return {
            "policy": self.policy,
            "jobs": self.jobs,
            "unserviceable": self.unserviceable,
            "makespan": self.makespan,
            "mean_response_time": self.mean_response_time,
            "max_response_time": self.max_response_time,
            "throughput": self.throughput,
            "bytes_staged": self.bytes_staged,
            "bytes_requested": self.bytes_requested,
            "byte_miss_ratio": self.byte_miss_ratio,
            "request_hits": self.request_hits,
            "request_hit_ratio": self.request_hit_ratio,
            "deferred_starts": self.deferred_starts,
            "retries": self.retries,
            "failovers": self.failovers,
            "timeouts": self.timeouts,
            "requeues": self.requeues,
            "failed_jobs": self.failed_jobs,
            "time_lost_to_faults": self.time_lost_to_faults,
        }


class _JobContext:
    """Bookkeeping of one job in service."""

    __slots__ = (
        "request",
        "arrived",
        "awaiting",
        "pinned",
        "loaded",
        "hit",
        "attempts",
        "tokens",
        "sites",
    )

    def __init__(self, request: Request, arrived: float):
        self.request = request
        self.arrived = arrived
        self.awaiting: set[FileId] = set()
        self.pinned: set[FileId] = set()
        self.loaded: set[FileId] = set()
        self.hit = False
        # fault-tolerance state, all keyed by file id:
        self.attempts: dict[FileId, int] = {}  # failed attempts so far
        self.tokens: dict[FileId, int] = {}  # current in-flight attempt id
        self.sites: dict[FileId, str] = {}  # site serving the last attempt


class StorageResourceManager:
    """Event-driven SRM: staged one bundle at a time, pinned concurrency.

    With a ``replicas`` catalog each missing file is fetched from its best
    replica site; otherwise a single local MSS/link pair is used.  With
    ``config.faults`` set a :class:`~repro.faults.FaultInjector` is
    created and attached to every MSS the SRM stages from, and the
    retry/failover pipeline described in the module docstring is active.
    """

    def __init__(
        self,
        engine: EventEngine,
        sizes: dict[FileId, SizeBytes],
        config: SRMConfig,
        *,
        replicas: ReplicaCatalog | None = None,
        future_bundles=None,
        registry: MetricsRegistry | None = None,
    ):
        self.engine = engine
        self.sizes = sizes
        self.config = config
        # Each SRM owns its registry (never the recorder's shared one) so
        # counters cannot leak across runs; the recorder is captured once
        # because staging decisions happen deep inside event callbacks.
        self.registry = registry if registry is not None else MetricsRegistry()
        self._recorder = current_recorder()
        self.cache = CacheState(config.cache_size)
        self.policy = make_policy(
            config.policy, future=future_bundles, **config.policy_kwargs
        )
        self.policy.bind(self.cache, sizes)
        self.replicas = replicas
        self.injector: FaultInjector | None = (
            FaultInjector(config.faults) if config.faults is not None else None
        )
        if replicas is None:
            self.mss: MassStorageSystem | None = MassStorageSystem(
                engine,
                n_drives=config.n_drives,
                mount_latency=config.mount_latency,
                drive_bandwidth=config.drive_bandwidth,
                injector=self.injector,
            )
        else:
            self.mss = None
            if self.injector is not None:
                for site in replicas.sites():
                    site.mss.injector = self.injector
        self._jitter_rng = (
            self.injector.stream("backoff-jitter") if self.injector is not None else None
        )

        self._queue: deque[tuple[Request, float]] = deque()
        self._active: list[_JobContext] = []
        self._staging: _JobContext | None = None
        self._token_seq = itertools.count()
        self._requeued_ids: set[int] = set()

        reg = self.registry
        self.response_times = reg.histogram(
            "srm_response_time_seconds",
            "job completion minus arrival, simulated seconds",
            buckets=_RESPONSE_TIME_BUCKETS,
        )
        self._bytes_staged = reg.counter(
            "srm_bytes_staged_total", "bytes fetched into the disk cache"
        )
        self._bytes_requested = reg.counter(
            "srm_bytes_requested_total", "bundle bytes of completed jobs"
        )
        self._jobs_done = reg.counter("srm_jobs_done_total", "jobs completed")
        self._request_hits = reg.counter(
            "srm_request_hits_total", "jobs whose bundle was fully resident"
        )
        self._unserviceable = reg.counter(
            "srm_unserviceable_total", "jobs larger than the cache"
        )
        self._deferred_starts = reg.counter(
            "srm_deferred_starts_total", "job starts blocked by pinned files"
        )
        self._retries = reg.counter(
            "srm_retries_total", "staging attempts retried after a fault"
        )
        self._failovers = reg.counter(
            "srm_failovers_total", "staging attempts moved to another replica site"
        )
        self._timeouts = reg.counter(
            "srm_timeouts_total", "staging attempts abandoned by the watchdog"
        )
        self._requeues = reg.counter(
            "srm_requeues_total", "jobs re-submitted after exhausting retries"
        )
        self._failed_jobs = reg.counter(
            "srm_failed_jobs_total", "jobs abandoned after their requeue"
        )
        self._time_lost = reg.gauge(
            "srm_time_lost_to_faults_seconds",
            "simulated time spent in failed attempts, backoff and spikes",
        )
        self.fault_log: list[Exception] = []
        self.last_completion = 0.0

    # ------------------------------------------------------------------ #
    # counter faces: the public attribute names tests and result builders
    # read, now backed by the metrics registry

    @property
    def bytes_staged(self) -> SizeBytes:
        return int(self._bytes_staged.value)

    @property
    def bytes_requested(self) -> SizeBytes:
        return int(self._bytes_requested.value)

    @property
    def jobs_done(self) -> int:
        return int(self._jobs_done.value)

    @property
    def request_hits(self) -> int:
        return int(self._request_hits.value)

    @property
    def unserviceable(self) -> int:
        return int(self._unserviceable.value)

    @property
    def deferred_starts(self) -> int:
        return int(self._deferred_starts.value)

    @property
    def retries(self) -> int:
        return int(self._retries.value)

    @property
    def failovers(self) -> int:
        return int(self._failovers.value)

    @property
    def timeouts(self) -> int:
        return int(self._timeouts.value)

    @property
    def requeues(self) -> int:
        return int(self._requeues.value)

    @property
    def failed_jobs(self) -> int:
        return int(self._failed_jobs.value)

    @property
    def time_lost_to_faults(self) -> float:
        return float(self._time_lost.value)

    # ------------------------------------------------------------------ #

    def _size(self, file_id: FileId) -> SizeBytes:
        try:
            return self.sizes[file_id]
        except KeyError:
            raise UnknownFileError(
                f"file {file_id!r} is not in the size catalog"
            ) from None

    def submit(self, request: Request) -> None:
        """Enqueue a job at the current simulated time."""
        try:
            bundle_size = request.bundle.size_under(self.sizes)
        except KeyError as exc:
            raise UnknownFileError(
                f"request {request.request_id} references unknown file "
                f"{exc.args[0] if exc.args else '?'!r}"
            ) from None
        if bundle_size > self.cache.capacity:
            self._unserviceable.inc()
            return
        self._queue.append((request, self.engine.now))
        self._maybe_start()

    @property
    def busy_slots(self) -> int:
        return len(self._active)

    @property
    def queued_jobs(self) -> int:
        return len(self._queue)

    def export_queue_state(self) -> dict:
        """JSON-ready snapshot of the admission/service queues.

        The checkpoint layer snapshots this alongside cache and policy
        state so an interrupted grid run can be inspected (which jobs
        were waiting, in flight, or staging when the process died).
        Export-only: the event-driven SRM is recovered by re-execution,
        not by state import.
        """
        return {
            "queued": [
                {"request_id": r.request_id, "arrived": arrived}
                for r, arrived in self._queue
            ],
            "active": [
                {
                    "request_id": ctx.request.request_id,
                    "arrived": ctx.arrived,
                    "awaiting": sorted(ctx.awaiting),
                    "pinned": sorted(ctx.pinned),
                    "hit": ctx.hit,
                }
                for ctx in self._active
            ],
            "staging": (
                self._staging.request.request_id
                if self._staging is not None
                else None
            ),
            "requeued_ids": sorted(self._requeued_ids),
        }

    # ------------------------------------------------------------------ #

    def _maybe_start(self) -> None:
        while (
            self._queue
            and self._staging is None
            and len(self._active) < self.config.service_slots
        ):
            if not self._try_start():
                break

    def _try_start(self) -> bool:
        """Start the head-of-queue job; False if blocked by pins."""
        request, arrived = self._queue[0]
        bundle = request.bundle
        missing = self.cache.missing(bundle)

        try:
            decision = self.policy.on_request(bundle)
        except (PolicyError, CacheCapacityError):
            # Pinned files of jobs in their compute phase block eviction;
            # retry when a completion releases pins.
            self._deferred_starts.inc()
            return False

        to_stage = set(missing)
        budget = self.cache.free - sum(self._size(f) for f in missing)
        for f in sorted(decision.prefetch):
            if f in self.cache or f in to_stage:
                continue
            size = self._size(f)
            if size <= budget:  # drop prefetches that no longer fit
                to_stage.add(f)
                budget -= size
        if self.cache.free < sum(self._size(f) for f in to_stage):
            raise SimulationError(
                f"policy {self.policy.name!r} did not free enough space"
            )

        self._queue.popleft()
        ctx = _JobContext(request, arrived)
        ctx.hit = not missing
        self._active.append(ctx)
        for f in bundle:
            if f in self.cache:
                self.cache.pin(f)
                ctx.pinned.add(f)
        if not to_stage:
            self._start_processing(ctx)
            return True
        ctx.awaiting = set(to_stage)
        self._staging = ctx
        for f in sorted(to_stage):
            self._stage_file(f)
        return True

    # ------------------------------------------------------------------ #
    # staging attempts

    def _down_sites(self) -> set[str]:
        """Names of replica sites currently inside a downtime window."""
        if self.injector is None or self.replicas is None:
            return set()
        now = self.engine.now
        return {
            site.name
            for site in self.replicas.sites()
            if self.injector.is_down(site.name, now)
        }

    def _current(self, ctx: _JobContext, file_id: FileId, token: int) -> bool:
        """Is ``token`` still the live staging attempt for ``file_id``?"""
        return (
            self._staging is ctx
            and file_id in ctx.awaiting
            and ctx.tokens.get(file_id) == token
        )

    def _stage_file(self, file_id: FileId) -> None:
        with self._recorder.span("srm.stage"):
            self._dispatch_stage(file_id)

    def _dispatch_stage(self, file_id: FileId) -> None:
        """Synchronous part of one staging attempt: resolve source, dispatch."""
        ctx = self._staging
        assert ctx is not None
        size = self._size(file_id)
        token = next(self._token_seq)
        ctx.tokens[file_id] = token
        started = self.engine.now

        if self.replicas is not None:
            down = self._down_sites()
            if down:
                locations = set(self.replicas.locations(file_id))
                if locations and locations <= down:
                    # every replica holder is down: back off and retry
                    self._attempt_failed(ctx, file_id, token, started)
                    return
            site = self.replicas.best_source(file_id, size, exclude=down)
            previous = ctx.sites.get(file_id)
            if previous is not None and site.name != previous:
                self._failovers.inc()
                if self._recorder.active:
                    self._recorder.emit(
                        StageFailedOver(
                            file=str(file_id),
                            from_site=previous,
                            to_site=site.name,
                            t=started,
                        )
                    )
            mss, link, component = site.mss, site.link, site.name
        else:
            assert self.mss is not None
            mss, link, component = self.mss, self.config.link, self.mss.name
        # remembered for failover detection and the StageCompleted event
        ctx.sites[file_id] = component
        if self._recorder.active:
            self._recorder.emit(
                StageStarted(
                    file=str(file_id),
                    bytes=size,
                    site=component,
                    attempt=ctx.attempts.get(file_id, 0) + 1,
                    t=started,
                )
            )

        if self.config.staging_timeout is not None:
            self.engine.schedule(
                self.config.staging_timeout,
                lambda: self._attempt_timed_out(ctx, file_id, token, started),
            )

        def _retrieved(fid: FileId) -> None:
            # File is off tape; now cross the WAN into the disk cache.
            if not self._current(ctx, fid, token):
                return  # attempt was timed out or the job was abandoned
            base = link.transfer_time(self.sizes[fid])
            if self.injector is not None:
                fraction = self.injector.transfer_fault(component)
                if fraction is not None:
                    self.engine.schedule(
                        base * fraction,
                        lambda: self._attempt_failed(ctx, fid, token, started),
                    )
                    return
                spike = self.injector.latency_spike(component)
                if spike != 1.0:
                    self._time_lost.inc(base * (spike - 1.0))
                    base = link.transfer_time(self.sizes[fid], spike=spike)
            self.engine.schedule(
                base, lambda: self._file_arrived(ctx, fid, token)
            )

        def _retrieval_failed(fid: FileId) -> None:
            self._attempt_failed(ctx, fid, token, started)

        mss.retrieve(
            file_id,
            size,
            _retrieved,
            on_failure=_retrieval_failed if self.injector is not None else None,
        )

    def _attempt_timed_out(
        self, ctx: _JobContext, file_id: FileId, token: int, started: float
    ) -> None:
        if not self._current(ctx, file_id, token):
            return  # the attempt finished (or already failed) in time
        self._timeouts.inc()
        self._log_fault(
            StagingTimeoutError(file_id, self.config.staging_timeout or 0.0)
        )
        self._attempt_failed(ctx, file_id, token, started)

    def _attempt_failed(
        self, ctx: _JobContext, file_id: FileId, token: int, started: float
    ) -> None:
        """One staging attempt died: back off and retry, or give up."""
        if not self._current(ctx, file_id, token):
            return  # a different failure path won the race
        self._time_lost.inc(self.engine.now - started)

        failures = ctx.attempts.get(file_id, 0) + 1
        ctx.attempts[file_id] = failures
        if failures > self.config.max_retries:
            self._log_fault(RetryExhaustedError(file_id, failures))
            self._job_failed(ctx)
            return

        self._retries.inc()
        delay = min(
            self.config.backoff_cap,
            self.config.retry_backoff * (2.0 ** (failures - 1)),
        )
        if self._jitter_rng is not None and self.config.backoff_jitter > 0:
            delay += (
                delay * self.config.backoff_jitter * float(self._jitter_rng.random())
            )
        self._time_lost.inc(delay)
        if self._recorder.active:
            self._recorder.emit(
                StageRetried(
                    file=str(file_id),
                    attempt=failures,
                    delay=delay,
                    t=self.engine.now,
                )
            )
        retry_token = next(self._token_seq)
        ctx.tokens[file_id] = retry_token
        self.engine.schedule(
            delay, lambda: self._retry_stage(ctx, file_id, retry_token)
        )

    def _retry_stage(self, ctx: _JobContext, file_id: FileId, token: int) -> None:
        if not self._current(ctx, file_id, token):
            return  # the job was abandoned while we were backing off
        self._stage_file(file_id)

    def _job_failed(self, ctx: _JobContext) -> None:
        """A file exhausted its retry budget: requeue once, then fail."""
        self._staging = None
        ctx.awaiting.clear()
        ctx.tokens.clear()
        self._active.remove(ctx)
        for f in ctx.pinned:
            self.cache.unpin(f)
        if ctx.loaded:
            # Files staged before the abort are resident; tell the policy
            # so its bookkeeping covers them (they stay evictable).
            self.policy.on_serviced(
                FileBundle(sorted(ctx.loaded)), frozenset(ctx.loaded), False
            )
        request_id = ctx.request.request_id
        if request_id not in self._requeued_ids:
            self._requeued_ids.add(request_id)
            self._requeues.inc()
            self._queue.append((ctx.request, ctx.arrived))
        else:
            self._failed_jobs.inc()
        self._maybe_start()

    def _log_fault(self, exc: Exception) -> None:
        if len(self.fault_log) < _FAULT_LOG_LIMIT:
            self.fault_log.append(exc)

    # ------------------------------------------------------------------ #

    def _file_arrived(self, ctx: _JobContext, file_id: FileId, token: int) -> None:
        if not self._current(ctx, file_id, token):
            if self.injector is None and self.config.staging_timeout is None:
                # without faults or timeouts every arrival must be live
                raise SimulationError(f"unexpected arrival of {file_id!r}")
            return  # stale completion of a timed-out attempt
        size = self._size(file_id)
        self.cache.load(file_id, size)
        self.cache.pin(file_id)
        self._bytes_staged.inc(size)
        if self._recorder.active:
            self._recorder.emit(
                StageCompleted(
                    file=str(file_id),
                    bytes=size,
                    site=ctx.sites.get(file_id, ""),
                    t=self.engine.now,
                )
            )
        ctx.pinned.add(file_id)
        ctx.loaded.add(file_id)
        ctx.awaiting.discard(file_id)
        ctx.tokens.pop(file_id, None)
        if not ctx.awaiting:
            self._staging = None
            self._start_processing(ctx)
            self._maybe_start()

    def _start_processing(self, ctx: _JobContext) -> None:
        self.engine.schedule(
            self.config.processing_time, lambda: self._complete(ctx)
        )

    def _complete(self, ctx: _JobContext) -> None:
        bundle = ctx.request.bundle
        self.policy.on_serviced(bundle, frozenset(ctx.loaded), ctx.hit)
        for f in ctx.pinned:
            self.cache.unpin(f)
        self._active.remove(ctx)
        self.response_times.push(self.engine.now - ctx.arrived)
        self._jobs_done.inc()
        self._request_hits.inc(int(ctx.hit))
        self._bytes_requested.inc(bundle.size_under(self.sizes))
        self.last_completion = self.engine.now
        self._maybe_start()


def run_timed_simulation(
    trace: Trace,
    config: SRMConfig,
    *,
    replicas: ReplicaCatalog | None = None,
    recorder: TraceRecorder | None = None,
) -> SRMResult:
    """Replay a timed trace through an SRM and summarise.

    The trace must carry arrival times (generate with
    ``WorkloadSpec(arrival_rate=...)``); untimed traces are replayed
    back-to-back (all arrivals at t = 0), which measures saturated
    throughput.

    With ``config.faults`` set the run degrades gracefully: staging
    failures are retried, failed over, or — after the per-job requeue —
    reported in ``SRMResult.failed_jobs``; the run itself never raises
    because of an injected fault.

    ``recorder`` overrides the ambient telemetry recorder for this run;
    staging lifecycle events (``StageStarted``/``Retried``/``FailedOver``/
    ``Completed``, ``FaultInjected``) carry only simulated time.
    """
    if recorder is not None:
        with use_recorder(recorder):
            return run_timed_simulation(trace, config, replicas=replicas)
    engine = EventEngine()
    srm = StorageResourceManager(
        engine,
        trace.catalog.as_dict(),
        config,
        replicas=replicas,
        future_bundles=trace.bundles() if config.policy == "belady" else None,
    )
    for request in trace:
        engine.schedule_at(request.arrival_time, lambda r=request: srm.submit(r))
    engine.run()

    makespan = srm.last_completion
    return SRMResult(
        policy=config.policy,
        jobs=srm.jobs_done,
        unserviceable=srm.unserviceable,
        makespan=makespan,
        mean_response_time=(
            srm.response_times.mean if srm.response_times.count else 0.0
        ),
        max_response_time=(
            srm.response_times.max if srm.response_times.count else 0.0
        ),
        throughput=srm.jobs_done / makespan if makespan > 0 else 0.0,
        bytes_staged=srm.bytes_staged,
        request_hits=srm.request_hits,
        bytes_requested=srm.bytes_requested,
        deferred_starts=srm.deferred_starts,
        retries=srm.retries,
        failovers=srm.failovers,
        timeouts=srm.timeouts,
        requeues=srm.requeues,
        failed_jobs=srm.failed_jobs,
        time_lost_to_faults=srm.time_lost_to_faults,
    )
