"""Timed Storage-Resource-Manager simulation.

Jobs arrive at simulated times.  The SRM services bundles
*one-bundle-at-a-time* on the staging side — exactly the paper's service
model — while up to ``service_slots`` jobs may be in their compute phase
concurrently.  Starting a job pins its files (an SRM's core contract:
files a job depends on are never evicted mid-service); the replacement
policy therefore never sees pinned files as eviction victims, and a job
whose start is blocked by other jobs' pins waits until a completion
releases them.

Reported quantities are job **response time** (completion − arrival),
**throughput** and bytes staged — the timed face of the same trade-off the
byte-miss experiments measure: a policy that keeps the right file
*combinations* resident stages less and turns jobs around faster.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.cache.registry import make_policy
from repro.cache.state import CacheState
from repro.core.request import Request
from repro.errors import CacheCapacityError, ConfigError, PolicyError, SimulationError
from repro.grid.mss import MassStorageSystem
from repro.grid.network import NetworkLink
from repro.grid.site import ReplicaCatalog
from repro.sim.engine import EventEngine
from repro.types import MB, FileId, SizeBytes
from repro.utils.stats import RunningStats
from repro.workload.trace import Trace

__all__ = ["SRMConfig", "SRMResult", "StorageResourceManager", "run_timed_simulation"]


@dataclass(frozen=True)
class SRMConfig:
    """Parameters of a timed SRM run."""

    cache_size: SizeBytes
    policy: str = "optbundle"
    policy_kwargs: dict[str, Any] = field(default_factory=dict)
    n_drives: int = 4
    mount_latency: float = 20.0
    drive_bandwidth: float = 60 * MB
    link: NetworkLink = field(default_factory=NetworkLink)
    processing_time: float = 1.0
    service_slots: int = 1

    def __post_init__(self) -> None:
        if self.cache_size <= 0:
            raise ConfigError(f"cache_size must be positive, got {self.cache_size}")
        if self.processing_time < 0:
            raise ConfigError(
                f"processing_time must be non-negative, got {self.processing_time}"
            )
        if self.service_slots < 1:
            raise ConfigError(
                f"service_slots must be >= 1, got {self.service_slots}"
            )


@dataclass(frozen=True)
class SRMResult:
    """Outcome of :func:`run_timed_simulation`."""

    policy: str
    jobs: int
    unserviceable: int
    makespan: float
    mean_response_time: float
    max_response_time: float
    throughput: float
    bytes_staged: SizeBytes
    request_hits: int

    @property
    def request_hit_ratio(self) -> float:
        return self.request_hits / self.jobs if self.jobs else 0.0

    def as_dict(self) -> dict:
        return {
            "policy": self.policy,
            "jobs": self.jobs,
            "unserviceable": self.unserviceable,
            "makespan": self.makespan,
            "mean_response_time": self.mean_response_time,
            "max_response_time": self.max_response_time,
            "throughput": self.throughput,
            "bytes_staged": self.bytes_staged,
            "request_hit_ratio": self.request_hit_ratio,
        }


class _JobContext:
    """Bookkeeping of one job in service."""

    __slots__ = ("request", "arrived", "awaiting", "pinned", "loaded", "hit")

    def __init__(self, request: Request, arrived: float):
        self.request = request
        self.arrived = arrived
        self.awaiting: set[FileId] = set()
        self.pinned: set[FileId] = set()
        self.loaded: set[FileId] = set()
        self.hit = False


class StorageResourceManager:
    """Event-driven SRM: staged one bundle at a time, pinned concurrency.

    With a ``replicas`` catalog each missing file is fetched from its best
    replica site; otherwise a single local MSS/link pair is used.
    """

    def __init__(
        self,
        engine: EventEngine,
        sizes: dict[FileId, SizeBytes],
        config: SRMConfig,
        *,
        replicas: ReplicaCatalog | None = None,
        future_bundles=None,
    ):
        self.engine = engine
        self.sizes = sizes
        self.config = config
        self.cache = CacheState(config.cache_size)
        self.policy = make_policy(
            config.policy, future=future_bundles, **config.policy_kwargs
        )
        self.policy.bind(self.cache, sizes)
        self.replicas = replicas
        if replicas is None:
            self.mss: MassStorageSystem | None = MassStorageSystem(
                engine,
                n_drives=config.n_drives,
                mount_latency=config.mount_latency,
                drive_bandwidth=config.drive_bandwidth,
            )
        else:
            self.mss = None

        self._queue: deque[tuple[Request, float]] = deque()
        self._active: list[_JobContext] = []
        self._staging: _JobContext | None = None

        self.response_times = RunningStats()
        self.bytes_staged: SizeBytes = 0
        self.jobs_done = 0
        self.request_hits = 0
        self.unserviceable = 0
        self.deferred_starts = 0
        self.last_completion = 0.0

    # ------------------------------------------------------------------ #

    def submit(self, request: Request) -> None:
        """Enqueue a job at the current simulated time."""
        bundle_size = request.bundle.size_under(self.sizes)
        if bundle_size > self.cache.capacity:
            self.unserviceable += 1
            return
        self._queue.append((request, self.engine.now))
        self._maybe_start()

    @property
    def busy_slots(self) -> int:
        return len(self._active)

    @property
    def queued_jobs(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------ #

    def _maybe_start(self) -> None:
        while (
            self._queue
            and self._staging is None
            and len(self._active) < self.config.service_slots
        ):
            if not self._try_start():
                break

    def _try_start(self) -> bool:
        """Start the head-of-queue job; False if blocked by pins."""
        request, arrived = self._queue[0]
        bundle = request.bundle
        missing = self.cache.missing(bundle)

        try:
            decision = self.policy.on_request(bundle)
        except (PolicyError, CacheCapacityError):
            # Pinned files of jobs in their compute phase block eviction;
            # retry when a completion releases pins.
            self.deferred_starts += 1
            return False

        to_stage = set(missing)
        budget = self.cache.free - sum(self.sizes[f] for f in missing)
        for f in sorted(decision.prefetch):
            if f in self.cache or f in to_stage:
                continue
            size = self.sizes[f]
            if size <= budget:  # drop prefetches that no longer fit
                to_stage.add(f)
                budget -= size
        if self.cache.free < sum(self.sizes[f] for f in to_stage):
            raise SimulationError(
                f"policy {self.policy.name!r} did not free enough space"
            )

        self._queue.popleft()
        ctx = _JobContext(request, arrived)
        ctx.hit = not missing
        self._active.append(ctx)
        for f in bundle:
            if f in self.cache:
                self.cache.pin(f)
                ctx.pinned.add(f)
        if not to_stage:
            self._start_processing(ctx)
            return True
        ctx.awaiting = set(to_stage)
        self._staging = ctx
        for f in sorted(to_stage):
            self._stage_file(f)
        return True

    def _stage_file(self, file_id: FileId) -> None:
        size = self.sizes[file_id]
        if self.replicas is not None:
            site = self.replicas.best_source(file_id, size)
            mss, link = site.mss, site.link
        else:
            assert self.mss is not None
            mss, link = self.mss, self.config.link

        def _retrieved(fid: FileId) -> None:
            # File is off tape; now cross the WAN into the disk cache.
            self.engine.schedule(
                link.transfer_time(self.sizes[fid]),
                lambda: self._file_arrived(fid),
            )

        mss.retrieve(file_id, size, _retrieved)

    def _file_arrived(self, file_id: FileId) -> None:
        ctx = self._staging
        if ctx is None or file_id not in ctx.awaiting:
            raise SimulationError(f"unexpected arrival of {file_id!r}")
        size = self.sizes[file_id]
        self.cache.load(file_id, size)
        self.cache.pin(file_id)
        self.bytes_staged += size
        ctx.pinned.add(file_id)
        ctx.loaded.add(file_id)
        ctx.awaiting.discard(file_id)
        if not ctx.awaiting:
            self._staging = None
            self._start_processing(ctx)
            self._maybe_start()

    def _start_processing(self, ctx: _JobContext) -> None:
        self.engine.schedule(
            self.config.processing_time, lambda: self._complete(ctx)
        )

    def _complete(self, ctx: _JobContext) -> None:
        bundle = ctx.request.bundle
        self.policy.on_serviced(bundle, frozenset(ctx.loaded), ctx.hit)
        for f in ctx.pinned:
            self.cache.unpin(f)
        self._active.remove(ctx)
        self.response_times.push(self.engine.now - ctx.arrived)
        self.jobs_done += 1
        self.request_hits += int(ctx.hit)
        self.last_completion = self.engine.now
        self._maybe_start()


def run_timed_simulation(
    trace: Trace,
    config: SRMConfig,
    *,
    replicas: ReplicaCatalog | None = None,
) -> SRMResult:
    """Replay a timed trace through an SRM and summarise.

    The trace must carry arrival times (generate with
    ``WorkloadSpec(arrival_rate=...)``); untimed traces are replayed
    back-to-back (all arrivals at t = 0), which measures saturated
    throughput.
    """
    engine = EventEngine()
    srm = StorageResourceManager(
        engine,
        trace.catalog.as_dict(),
        config,
        replicas=replicas,
        future_bundles=trace.bundles() if config.policy == "belady" else None,
    )
    for request in trace:
        engine.schedule_at(request.arrival_time, lambda r=request: srm.submit(r))
    engine.run()

    makespan = srm.last_completion
    return SRMResult(
        policy=config.policy,
        jobs=srm.jobs_done,
        unserviceable=srm.unserviceable,
        makespan=makespan,
        mean_response_time=(
            srm.response_times.mean if srm.response_times.count else 0.0
        ),
        max_response_time=(
            srm.response_times.max if srm.response_times.count else 0.0
        ),
        throughput=srm.jobs_done / makespan if makespan > 0 else 0.0,
        bytes_staged=srm.bytes_staged,
        request_hits=srm.request_hits,
    )
