"""Replica-placement strategies for multi-site data grids.

The paper's introduction lists "strategic data replication" among the
techniques for efficient grid data access; this module provides three
placements of a bounded mirror budget onto a fast replica site:

* :func:`place_random` — mirror a uniform random selection of files;
* :func:`place_by_popularity` — mirror the most-referenced files first
  (the per-file analogue of popularity caching);
* :func:`place_bundle_aware` — mirror the file set maximising supported
  *request value* by running :func:`repro.core.optcacheselect
  .opt_cache_select` over the observed bundle counts with the mirror
  budget as capacity — the same popularity-vs-request-hit argument the
  paper makes for caches, applied to replication.

Each returns the set of file ids to mirror; wire them into a
:class:`~repro.grid.site.ReplicaCatalog` to drive timed simulations.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.core.optcacheselect import FBCInstance, opt_cache_select
from repro.errors import ConfigError
from repro.grid.site import DataGridSite, ReplicaCatalog
from repro.types import FileId, SizeBytes
from repro.workload.trace import Trace

__all__ = [
    "place_random",
    "place_by_popularity",
    "place_bundle_aware",
    "build_two_tier_catalog",
]


def _check_budget(budget: SizeBytes) -> None:
    if budget < 0:
        raise ConfigError(f"mirror budget must be non-negative, got {budget}")


def place_random(
    trace: Trace, budget: SizeBytes, rng: np.random.Generator
) -> set[FileId]:
    """Mirror uniformly random files until the budget is exhausted."""
    _check_budget(budget)
    sizes = trace.catalog.as_dict()
    chosen: set[FileId] = set()
    used = 0
    for idx in rng.permutation(len(sizes)):
        fid = trace.catalog.ids()[int(idx)]
        if used + sizes[fid] <= budget:
            chosen.add(fid)
            used += sizes[fid]
    return chosen


def place_by_popularity(trace: Trace, budget: SizeBytes) -> set[FileId]:
    """Mirror the most-requested files first (ties: smaller files first)."""
    _check_budget(budget)
    sizes = trace.catalog.as_dict()
    counts: Counter[FileId] = Counter()
    for request in trace:
        counts.update(request.bundle.files)
    chosen: set[FileId] = set()
    used = 0
    for fid, _count in sorted(
        counts.items(), key=lambda kv: (-kv[1], sizes[kv[0]], kv[0])
    ):
        if used + sizes[fid] <= budget:
            chosen.add(fid)
            used += sizes[fid]
    return chosen


def place_bundle_aware(trace: Trace, budget: SizeBytes) -> set[FileId]:
    """Mirror the file set supporting the highest total request value.

    Runs OptCacheSelect over the trace's bundle occurrence counts with the
    mirror budget as the knapsack capacity: whole *bundles* get mirrored,
    so hot request types are served entirely from the fast tier.
    """
    _check_budget(budget)
    counts = Counter(r.bundle for r in trace)
    if not counts:
        return set()
    bundles = tuple(counts)
    inst = FBCInstance(
        bundles=bundles,
        values=tuple(float(counts[b]) for b in bundles),
        sizes=trace.catalog.as_dict(),
        budget=budget,
    )
    return set(opt_cache_select(inst).files)


def build_two_tier_catalog(
    trace: Trace,
    archive: DataGridSite,
    mirror: DataGridSite,
    mirrored_files: set[FileId],
) -> ReplicaCatalog:
    """A catalog with every file on the archive and a subset mirrored."""
    catalog = ReplicaCatalog()
    catalog.add_site(archive)
    catalog.add_site(mirror)
    for fid in trace.catalog.ids():
        catalog.add_replica(fid, archive.name)
        if fid in mirrored_files:
            catalog.add_replica(fid, mirror.name)
    return catalog
