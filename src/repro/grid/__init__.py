"""Data-grid substrate: mass storage, network links, SRMs and sites.

The paper's Section 2 context — a Storage Resource Manager fronting a Mass
Storage System over a wide-area network — modelled with enough fidelity to
measure *timed* quantities (response time, throughput) that the untimed
byte-miss simulator cannot: retrieving a missing file costs a tape-mount
plus transfer time, and jobs queue while their bundle is staged.  This
realises the paper's stated future work ("extend this work to include ...
the transfer times of files into the cache").
"""

from repro.grid.network import NetworkLink
from repro.grid.mss import MassStorageSystem
from repro.grid.srm import SRMConfig, SRMResult, StorageResourceManager, run_timed_simulation
from repro.grid.site import DataGridSite, ReplicaCatalog
from repro.grid.replication import (
    build_two_tier_catalog,
    place_bundle_aware,
    place_by_popularity,
    place_random,
)

__all__ = [
    "NetworkLink",
    "MassStorageSystem",
    "SRMConfig",
    "SRMResult",
    "StorageResourceManager",
    "run_timed_simulation",
    "DataGridSite",
    "ReplicaCatalog",
    "build_two_tier_catalog",
    "place_bundle_aware",
    "place_by_popularity",
    "place_random",
]
