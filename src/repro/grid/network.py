"""Wide-area network link model.

A link is characterised by a fixed round-trip latency and a sustained
bandwidth; a transfer of ``n`` bytes costs ``latency + n / bandwidth``
seconds.  This first-order model captures what matters for staging
gigabyte files across a WAN: per-file fixed cost plus size-proportional
cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.types import MB, SizeBytes

__all__ = ["NetworkLink"]


@dataclass(frozen=True)
class NetworkLink:
    """A point-to-point link.

    Attributes
    ----------
    bandwidth:
        Sustained throughput in bytes/second.
    latency:
        Fixed per-transfer setup cost in seconds (connection + RTTs).
    """

    bandwidth: float = 100 * MB
    latency: float = 0.050

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ConfigError(f"bandwidth must be positive, got {self.bandwidth}")
        if self.latency < 0:
            raise ConfigError(f"latency must be non-negative, got {self.latency}")

    def transfer_time(self, nbytes: SizeBytes, *, spike: float = 1.0) -> float:
        """Seconds to move ``nbytes`` across the link.

        ``spike`` models transient congestion (a latency spike from a
        :class:`~repro.faults.FaultInjector`): the whole transfer is
        slowed by that factor.  ``spike=1.0`` is the exact nominal time.
        """
        if nbytes < 0:
            raise ConfigError(f"nbytes must be non-negative, got {nbytes}")
        if spike < 1.0:
            raise ConfigError(f"spike must be >= 1, got {spike}")
        base = self.latency + nbytes / self.bandwidth
        return base if spike == 1.0 else spike * base
