"""Request-popularity distributions: uniform and Zipf (Section 5.2).

The paper examines "the two extreme distributions: a purely random
distribution, and a Zipf distribution" where the *i*-th most popular
request type is drawn with probability proportional to ``1/i`` — i.e.
Zipf with exponent 1; the exponent is configurable here.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ConfigError

__all__ = [
    "zipf_weights",
    "PopularitySampler",
    "UniformSampler",
    "ZipfSampler",
    "make_sampler",
]


def zipf_weights(n: int, alpha: float = 1.0) -> np.ndarray:
    """Normalized Zipf probabilities ``p_i ∝ 1/i^alpha`` for ranks 1..n."""
    if n <= 0:
        raise ConfigError(f"n must be positive, got {n}")
    if alpha < 0:
        raise ConfigError(f"alpha must be non-negative, got {alpha}")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-alpha
    return weights / weights.sum()


class PopularitySampler(abc.ABC):
    """Samples request-type indices ``0..n-1`` by popularity rank.

    Rank 0 is the most popular type.  Generators shuffle pool order
    themselves if rank should not correlate with generation order.
    """

    def __init__(self, n: int):
        if n <= 0:
            raise ConfigError(f"pool size must be positive, got {n}")
        self.n = n

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` indices i.i.d. from the popularity distribution."""

    @abc.abstractmethod
    def probabilities(self) -> np.ndarray:
        """The probability of each index (length ``n``, sums to 1)."""


class UniformSampler(PopularitySampler):
    """Every request type equally likely (the paper's "random" workload)."""

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        if size < 0:
            raise ConfigError(f"size must be non-negative, got {size}")
        return rng.integers(0, self.n, size=size)

    def probabilities(self) -> np.ndarray:
        return np.full(self.n, 1.0 / self.n)

    def __repr__(self) -> str:
        return f"UniformSampler(n={self.n})"


class ZipfSampler(PopularitySampler):
    """Zipf popularity: ``P(rank i) ∝ 1/i^alpha`` (paper: alpha = 1).

    Sampling uses inverse-CDF lookup on the precomputed cumulative weights,
    which is O(log n) per draw and exact.
    """

    def __init__(self, n: int, alpha: float = 1.0):
        super().__init__(n)
        self.alpha = alpha
        self._cdf = np.cumsum(zipf_weights(n, alpha))

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        if size < 0:
            raise ConfigError(f"size must be non-negative, got {size}")
        u = rng.random(size)
        return np.searchsorted(self._cdf, u, side="right").clip(0, self.n - 1)

    def probabilities(self) -> np.ndarray:
        return zipf_weights(self.n, self.alpha)

    def __repr__(self) -> str:
        return f"ZipfSampler(n={self.n}, alpha={self.alpha})"


def make_sampler(kind: str, n: int, *, alpha: float = 1.0) -> PopularitySampler:
    """Factory: ``kind`` in {"uniform", "zipf"}."""
    if kind == "uniform":
        return UniformSampler(n)
    if kind == "zipf":
        return ZipfSampler(n, alpha)
    raise ConfigError(f"unknown popularity distribution {kind!r}")
