"""End-to-end workload generation from a declarative spec (Section 5.1–5.2).

:class:`WorkloadSpec` captures the paper's simulation parameters — cache
size, file-size range as a fraction of the cache, request-pool shape, job
count and popularity distribution — and :func:`generate_trace` turns one
into a reproducible :class:`~repro.workload.trace.Trace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.request import Request, RequestStream
from repro.errors import ConfigError
from repro.types import SizeBytes
from repro.utils.rng import RngFactory
from repro.workload.distributions import make_sampler
from repro.workload.filepool import FileSizeSpec, generate_catalog
from repro.workload.requestpool import generate_request_pool
from repro.workload.trace import Trace

__all__ = [
    "WorkloadSpec",
    "generate_trace",
    "average_request_size",
    "cache_size_in_requests",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of a synthetic workload.

    Attributes
    ----------
    cache_size:
        Target cache size ``s(C)`` in bytes; file and bundle budgets are
        expressed relative to it, as in the paper.
    n_files:
        Size of the file population.
    n_request_types:
        Size of the request pool from which jobs draw.
    n_jobs:
        Number of job arrivals in the trace (paper: typically 10 000).
    popularity / zipf_alpha:
        ``"uniform"`` or ``"zipf"`` with exponent ``zipf_alpha``.
    files_per_request:
        Inclusive (min, max) file-count target per request type.
    max_file_fraction:
        Max file size as a fraction of the cache (paper: 1%–10%).
    max_bundle_fraction:
        Max total bundle size as a fraction of the cache (paper: < 1).
    size_spec:
        Optional explicit :class:`FileSizeSpec` overriding the paper model.
    arrival_rate:
        Optional Poisson arrival rate (jobs/second) stamping arrival times
        for the timed grid simulations; untimed traces use time 0.
    seed:
        Master seed; every internal stream derives from it.
    """

    cache_size: SizeBytes
    n_files: int = 400
    n_request_types: int = 400
    n_jobs: int = 10_000
    popularity: str = "uniform"
    zipf_alpha: float = 1.0
    files_per_request: tuple[int, int] = (1, 10)
    max_file_fraction: float = 0.01
    max_bundle_fraction: float = 0.95
    size_spec: FileSizeSpec | None = None
    arrival_rate: float | None = None
    distinct_requests: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.cache_size <= 0:
            raise ConfigError(f"cache_size must be positive, got {self.cache_size}")
        if self.n_files <= 0 or self.n_request_types <= 0 or self.n_jobs < 0:
            raise ConfigError("n_files/n_request_types must be positive, n_jobs >= 0")
        if not (0.0 < self.max_bundle_fraction <= 1.0):
            raise ConfigError(
                f"max_bundle_fraction must be in (0, 1], got {self.max_bundle_fraction}"
            )
        if self.arrival_rate is not None and self.arrival_rate <= 0:
            raise ConfigError(
                f"arrival_rate must be positive, got {self.arrival_rate}"
            )
        if self.popularity not in ("uniform", "zipf"):
            raise ConfigError(f"unknown popularity {self.popularity!r}")

    def effective_size_spec(self) -> FileSizeSpec:
        if self.size_spec is not None:
            return self.size_spec
        return FileSizeSpec.paper(self.cache_size, self.max_file_fraction)

    def with_seed(self, seed: int) -> "WorkloadSpec":
        """The same workload shape under a different random seed."""
        return replace(self, seed=seed)

    def describe(self) -> dict:
        """JSON-friendly summary stored in the trace metadata."""
        spec = self.effective_size_spec()
        return {
            "cache_size": self.cache_size,
            "n_files": self.n_files,
            "n_request_types": self.n_request_types,
            "n_jobs": self.n_jobs,
            "popularity": self.popularity,
            "zipf_alpha": self.zipf_alpha,
            "files_per_request": list(self.files_per_request),
            "size_distribution": spec.distribution,
            "min_file_size": spec.min_size,
            "max_file_size": spec.max_size,
            "max_bundle_fraction": self.max_bundle_fraction,
            "arrival_rate": self.arrival_rate,
            "seed": self.seed,
        }


def generate_trace(spec: WorkloadSpec) -> Trace:
    """Generate the catalog, request pool and job stream for a spec."""
    rngs = RngFactory(spec.seed)
    catalog = generate_catalog(
        spec.n_files, spec.effective_size_spec(), rngs.rng("file-sizes")
    )
    pool = generate_request_pool(
        catalog,
        spec.n_request_types,
        rngs.rng("request-pool"),
        max_bundle_bytes=int(spec.cache_size * spec.max_bundle_fraction),
        files_per_request=spec.files_per_request,
        distinct=spec.distinct_requests,
    )
    sampler = make_sampler(spec.popularity, len(pool), alpha=spec.zipf_alpha)
    indices = sampler.sample(rngs.rng("popularity"), spec.n_jobs)

    if spec.arrival_rate is not None:
        gaps = rngs.rng("arrivals").exponential(
            1.0 / spec.arrival_rate, size=spec.n_jobs
        )
        times = gaps.cumsum()
    else:
        times = None

    stream = RequestStream(
        Request(
            request_id=i,
            bundle=pool[int(idx)],
            arrival_time=float(times[i]) if times is not None else 0.0,
        )
        for i, idx in enumerate(indices)
    )
    return Trace(catalog, stream, meta=spec.describe())


def average_request_size(trace: Trace) -> float:
    """Mean bundle size in bytes over the trace's *distinct* request types."""
    sizes = trace.catalog.as_dict()
    types = trace.stream.distinct_bundles()
    if not types:
        raise ConfigError("trace has no requests")
    return sum(b.size_under(sizes) for b in types) / len(types)


def cache_size_in_requests(trace: Trace, cache_size: SizeBytes) -> float:
    """Cache size expressed in average requests it can hold (Section 5).

    The paper reports cache sizes "by the number of requests that can be
    accommodated in the cache" — this is that conversion.
    """
    return cache_size / average_request_size(trace)
