"""Domain-flavoured workload generators for the paper's motivating examples.

Section 1.1 motivates file-bundle caching with three applications; each has
a generator here producing a structured (non-i.i.d.) bundle population:

* **HENP analysis** (:func:`henp_trace`) — event attributes vertically
  partitioned per dataset; analysis channels read characteristic attribute
  combinations across a dataset.
* **Climate model analysis** (:func:`climate_trace`) — one file per
  (simulation run, variable); visualisation/correlation jobs combine
  several variables of one run (Fig. 1 of the paper).
* **Bit-sliced index queries** (:func:`bitmap_index_trace`) — one file per
  (attribute, bin); a range query reads a contiguous bin range of each
  attribute it constrains.

All three produce bundles with heavy file sharing between popular request
types, the regime where bundle-aware replacement pays off.
"""

from __future__ import annotations

import numpy as np

from repro.core.bundle import FileBundle
from repro.core.request import Request, RequestStream
from repro.errors import ConfigError
from repro.types import MB, FileCatalog, FileInfo, SizeBytes
from repro.utils.rng import RngFactory
from repro.workload.distributions import zipf_weights
from repro.workload.trace import Trace

__all__ = ["henp_trace", "climate_trace", "bitmap_index_trace"]


def _zipf_choice(rng: np.random.Generator, n: int, alpha: float, size: int) -> np.ndarray:
    return rng.choice(n, size=size, p=zipf_weights(n, alpha))


def henp_trace(
    *,
    n_datasets: int = 20,
    n_attributes: int = 40,
    n_channels: int = 30,
    attrs_per_channel: tuple[int, int] = (3, 8),
    n_jobs: int = 5_000,
    mean_attr_file_size: SizeBytes = 20 * MB,
    dataset_alpha: float = 1.0,
    channel_alpha: float = 1.0,
    seed: int = 0,
) -> Trace:
    """High-Energy/Nuclear-Physics analysis workload.

    Each *dataset* (experiment run) stores every event attribute in its own
    file; an *analysis channel* is a fixed set of attributes physicists
    compare together (e.g. total energy + momentum + particle counts).  A
    job picks a dataset and a channel — both Zipf-popular: recent runs and
    hot channels dominate — and requests the corresponding attribute files.
    """
    if n_datasets <= 0 or n_attributes <= 0 or n_channels <= 0:
        raise ConfigError("dataset/attribute/channel counts must be positive")
    lo, hi = attrs_per_channel
    if not (1 <= lo <= hi <= n_attributes):
        raise ConfigError(
            f"attrs_per_channel must satisfy 1 <= lo <= hi <= {n_attributes}"
        )
    rngs = RngFactory(seed)

    size_rng = rngs.rng("attr-sizes")
    # Attribute value sizes differ (floats vs flags); datasets differ in
    # event counts — a per-dataset scale times a per-attribute scale.
    attr_scale = size_rng.lognormal(0.0, 0.6, size=n_attributes)
    ds_scale = size_rng.lognormal(0.0, 0.4, size=n_datasets)
    files = []
    for d in range(n_datasets):
        for a in range(n_attributes):
            size = max(int(mean_attr_file_size * attr_scale[a] * ds_scale[d]), MB)
            files.append(FileInfo(f"ds{d:03d}.attr{a:03d}", size))
    catalog = FileCatalog(files)

    chan_rng = rngs.rng("channels")
    channels: list[np.ndarray] = []
    for _ in range(n_channels):
        k = int(chan_rng.integers(lo, hi + 1))
        channels.append(chan_rng.choice(n_attributes, size=k, replace=False))

    job_rng = rngs.rng("jobs")
    ds_pick = _zipf_choice(job_rng, n_datasets, dataset_alpha, n_jobs)
    ch_pick = _zipf_choice(job_rng, n_channels, channel_alpha, n_jobs)
    stream = RequestStream(
        Request(
            request_id=i,
            bundle=FileBundle(
                f"ds{ds_pick[i]:03d}.attr{a:03d}" for a in channels[ch_pick[i]]
            ),
        )
        for i in range(n_jobs)
    )
    return Trace(
        catalog,
        stream,
        meta={
            "scenario": "henp",
            "n_datasets": n_datasets,
            "n_attributes": n_attributes,
            "n_channels": n_channels,
            "n_jobs": n_jobs,
            "seed": seed,
        },
    )


def climate_trace(
    *,
    n_runs: int = 12,
    variables: tuple[str, ...] = (
        "temperature",
        "humidity",
        "pressure",
        "wind_u",
        "wind_v",
        "wind_w",
        "precipitation",
        "cloud_cover",
        "sea_ice",
        "soil_moisture",
    ),
    n_analyses: int = 25,
    vars_per_analysis: tuple[int, int] = (2, 5),
    n_jobs: int = 5_000,
    mean_var_file_size: SizeBytes = 50 * MB,
    run_alpha: float = 0.8,
    analysis_alpha: float = 1.2,
    seed: int = 0,
) -> Trace:
    """Climate-simulation analysis workload (Fig. 1 of the paper).

    Each simulation run stores every variable's full time series in one
    file; analysis/visualisation jobs (e.g. "correlate temperature with the
    three wind components") read several variable files of one run
    simultaneously.
    """
    if n_runs <= 0 or not variables or n_analyses <= 0:
        raise ConfigError("runs/variables/analyses must be non-empty")
    lo, hi = vars_per_analysis
    if not (1 <= lo <= hi <= len(variables)):
        raise ConfigError(
            f"vars_per_analysis must satisfy 1 <= lo <= hi <= {len(variables)}"
        )
    rngs = RngFactory(seed)

    size_rng = rngs.rng("var-sizes")
    var_scale = size_rng.lognormal(0.0, 0.5, size=len(variables))
    run_scale = size_rng.lognormal(0.0, 0.3, size=n_runs)
    files = []
    for r in range(n_runs):
        for vi, var in enumerate(variables):
            size = max(int(mean_var_file_size * var_scale[vi] * run_scale[r]), MB)
            files.append(FileInfo(f"run{r:03d}.{var}", size))
    catalog = FileCatalog(files)

    an_rng = rngs.rng("analyses")
    analyses: list[np.ndarray] = []
    for _ in range(n_analyses):
        k = int(an_rng.integers(lo, hi + 1))
        analyses.append(an_rng.choice(len(variables), size=k, replace=False))

    job_rng = rngs.rng("jobs")
    run_pick = _zipf_choice(job_rng, n_runs, run_alpha, n_jobs)
    an_pick = _zipf_choice(job_rng, n_analyses, analysis_alpha, n_jobs)
    stream = RequestStream(
        Request(
            request_id=i,
            bundle=FileBundle(
                f"run{run_pick[i]:03d}.{variables[v]}" for v in analyses[an_pick[i]]
            ),
        )
        for i in range(n_jobs)
    )
    return Trace(
        catalog,
        stream,
        meta={
            "scenario": "climate",
            "n_runs": n_runs,
            "n_variables": len(variables),
            "n_analyses": n_analyses,
            "n_jobs": n_jobs,
            "seed": seed,
        },
    )


def bitmap_index_trace(
    *,
    n_attributes: int = 15,
    bins_per_attribute: int = 20,
    n_jobs: int = 5_000,
    mean_bitmap_size: SizeBytes = 8 * MB,
    attrs_per_query: tuple[int, int] = (1, 3),
    mean_range_len: float = 4.0,
    attribute_alpha: float = 1.0,
    seed: int = 0,
) -> Trace:
    """Bit-sliced-index range-query workload (Wu et al., SSDBM'03).

    Each attribute's value range is split into bins, one compressed bitmap
    file per bin.  A range query constrains 1–3 attributes, reading a
    contiguous bin range per constrained attribute; all those bitmap files
    must be resident simultaneously to evaluate the boolean combination.
    Range lengths are geometric with the given mean; query attributes are
    Zipf-popular; range *positions* favour central bins (values near the
    median are queried more).
    """
    if n_attributes <= 0 or bins_per_attribute <= 0:
        raise ConfigError("attribute and bin counts must be positive")
    lo, hi = attrs_per_query
    if not (1 <= lo <= hi <= n_attributes):
        raise ConfigError(
            f"attrs_per_query must satisfy 1 <= lo <= hi <= {n_attributes}"
        )
    if mean_range_len < 1.0:
        raise ConfigError(f"mean_range_len must be >= 1, got {mean_range_len}")
    rngs = RngFactory(seed)

    size_rng = rngs.rng("bitmap-sizes")
    files = []
    for a in range(n_attributes):
        for b in range(bins_per_attribute):
            # Compressed bitmap sizes vary with bin density.
            size = max(int(size_rng.lognormal(np.log(mean_bitmap_size), 0.7)), MB // 4)
            files.append(FileInfo(f"attr{a:03d}.bin{b:03d}", size))
    catalog = FileCatalog(files)

    job_rng = rngs.rng("queries")
    geom_p = 1.0 / mean_range_len
    requests: list[Request] = []
    for i in range(n_jobs):
        k = int(job_rng.integers(lo, hi + 1))
        attrs = job_rng.choice(
            n_attributes,
            size=k,
            replace=False,
            p=zipf_weights(n_attributes, attribute_alpha),
        )
        bundle_files: list[str] = []
        for a in attrs:
            length = min(int(job_rng.geometric(geom_p)), bins_per_attribute)
            # Central bins are queried more: triangular position density.
            center = job_rng.triangular(0, bins_per_attribute / 2, bins_per_attribute)
            start = int(np.clip(center - length / 2, 0, bins_per_attribute - length))
            bundle_files.extend(
                f"attr{a:03d}.bin{b:03d}" for b in range(start, start + length)
            )
        requests.append(Request(request_id=i, bundle=FileBundle(bundle_files)))
    return Trace(
        catalog,
        RequestStream(requests),
        meta={
            "scenario": "bitmap",
            "n_attributes": n_attributes,
            "bins_per_attribute": bins_per_attribute,
            "n_jobs": n_jobs,
            "seed": seed,
        },
    )
