"""Request-pool generation (Section 5.1).

"The set of files requested by each job was chosen randomly from the list
of available files such that the total size of the files requested was
smaller than the available cache size."  A request *pool* is the fixed
population of request types from which the job stream then draws with
uniform or Zipf popularity.
"""

from __future__ import annotations

import numpy as np

from repro.core.bundle import FileBundle
from repro.errors import WorkloadError
from repro.types import FileCatalog, SizeBytes

__all__ = ["generate_request_pool"]

_MAX_ATTEMPT_FACTOR = 50


def _draw_bundle(
    catalog_ids: list[str],
    sizes: dict[str, int],
    rng: np.random.Generator,
    n_target: int,
    max_bytes: SizeBytes,
) -> FileBundle | None:
    """One bundle attempt: up to ``n_target`` files within ``max_bytes``."""
    order = rng.permutation(len(catalog_ids))
    chosen: list[str] = []
    total = 0
    for idx in order:
        fid = catalog_ids[idx]
        size = sizes[fid]
        if total + size > max_bytes:
            continue
        chosen.append(fid)
        total += size
        if len(chosen) == n_target:
            break
    if not chosen:
        return None
    return FileBundle(chosen)


def generate_request_pool(
    catalog: FileCatalog,
    n_requests: int,
    rng: np.random.Generator,
    *,
    max_bundle_bytes: SizeBytes,
    files_per_request: tuple[int, int] = (1, 10),
    distinct: bool = True,
) -> list[FileBundle]:
    """Generate a pool of ``n_requests`` request types.

    Each type targets a file count drawn uniformly from
    ``files_per_request`` and accumulates uniformly random files while the
    total stays below ``max_bundle_bytes`` (the paper uses the cache size).

    With ``distinct=True`` duplicate bundles are redrawn, so popularity is
    imposed purely by the sampler, not accidentally by pool collisions.
    Raises :class:`~repro.errors.WorkloadError` when the configuration
    cannot produce enough (distinct) bundles.
    """
    lo, hi = files_per_request
    if n_requests <= 0:
        raise WorkloadError(f"n_requests must be positive, got {n_requests}")
    if lo < 1 or hi < lo:
        raise WorkloadError(
            f"files_per_request must satisfy 1 <= lo <= hi, got ({lo}, {hi})"
        )
    if max_bundle_bytes <= 0:
        raise WorkloadError(
            f"max_bundle_bytes must be positive, got {max_bundle_bytes}"
        )
    ids = catalog.ids()
    sizes = catalog.as_dict()
    if min(sizes.values()) > max_bundle_bytes:
        raise WorkloadError(
            "every file is larger than max_bundle_bytes; no bundle can be formed"
        )

    pool: list[FileBundle] = []
    seen: set[FileBundle] = set()
    attempts = 0
    max_attempts = _MAX_ATTEMPT_FACTOR * n_requests
    while len(pool) < n_requests:
        attempts += 1
        if attempts > max_attempts:
            raise WorkloadError(
                f"could not generate {n_requests} "
                f"{'distinct ' if distinct else ''}bundles after {attempts - 1} "
                "attempts; loosen files_per_request/max_bundle_bytes or the "
                "catalog size"
            )
        n_target = int(rng.integers(lo, hi + 1))
        bundle = _draw_bundle(ids, sizes, rng, n_target, max_bundle_bytes)
        if bundle is None:
            continue
        if distinct:
            if bundle in seen:
                continue
            seen.add(bundle)
        pool.append(bundle)
    return pool
