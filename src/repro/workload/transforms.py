"""Trace transformations: interleaving, splitting, scaling, filtering.

These support the paper's *hybrid execution model* future-work item
(Section 6): workloads mixing "One File at a Time" jobs with "File-Bundle
at a Time" jobs are built by exploding bundles into per-file jobs and
interleaving the result with the original bundle stream.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.bundle import FileBundle
from repro.core.request import Request, RequestStream
from repro.errors import ConfigError
from repro.workload.trace import Trace

__all__ = [
    "interleave",
    "explode_to_single_file_jobs",
    "hybrid_trace",
    "filter_trace",
    "truncate",
    "concatenate",
]


def _renumber(requests: Sequence[Request]) -> RequestStream:
    return RequestStream(
        Request(
            request_id=i,
            bundle=r.bundle,
            arrival_time=r.arrival_time,
            priority=r.priority,
        )
        for i, r in enumerate(requests)
    )


def truncate(trace: Trace, n_jobs: int) -> Trace:
    """The first ``n_jobs`` arrivals of a trace."""
    if n_jobs < 0:
        raise ConfigError(f"n_jobs must be non-negative, got {n_jobs}")
    return Trace(
        trace.catalog,
        _renumber(list(trace)[:n_jobs]),
        meta={**trace.meta, "truncated_to": n_jobs},
    )


def filter_trace(trace: Trace, predicate: Callable[[Request], bool]) -> Trace:
    """Keep only requests for which ``predicate`` holds (renumbered)."""
    kept = [r for r in trace if predicate(r)]
    return Trace(trace.catalog, _renumber(kept), meta=dict(trace.meta))


def concatenate(first: Trace, second: Trace) -> Trace:
    """Append ``second`` after ``first`` (catalogs must agree on shared ids)."""
    catalog = dict(first.catalog.items())
    for fid, size in second.catalog.items():
        if catalog.get(fid, size) != size:
            raise ConfigError(
                f"file {fid!r} has conflicting sizes in the two traces"
            )
        catalog[fid] = size
    from repro.types import FileCatalog

    offset = max((r.arrival_time for r in first), default=0.0)
    merged = list(first) + [
        Request(
            request_id=0,  # renumbered below
            bundle=r.bundle,
            arrival_time=r.arrival_time + offset,
            priority=r.priority,
        )
        for r in second
    ]
    return Trace(FileCatalog(catalog), _renumber(merged), meta=dict(first.meta))


def explode_to_single_file_jobs(trace: Trace) -> Trace:
    """Replace every bundle job by one job per file ("One File at a Time").

    Arrival times are inherited from the parent job, so exploded jobs are
    consecutive; priorities are inherited too.
    """
    singles: list[Request] = []
    for r in trace:
        for fid in sorted(r.bundle.files):
            singles.append(
                Request(
                    request_id=0,
                    bundle=FileBundle([fid]),
                    arrival_time=r.arrival_time,
                    priority=r.priority,
                )
            )
    return Trace(
        trace.catalog,
        _renumber(singles),
        meta={**trace.meta, "exploded": True},
    )


def interleave(
    a: Trace, b: Trace, rng: np.random.Generator, *, p_first: float = 0.5
) -> Trace:
    """Randomly interleave two traces over the same catalog.

    Each output slot draws from trace ``a`` with probability ``p_first``
    while both have jobs left, preserving each trace's internal order.
    Arrival times are dropped (order defines the untimed replay sequence).
    """
    if not (0.0 <= p_first <= 1.0):
        raise ConfigError(f"p_first must be in [0, 1], got {p_first}")
    from repro.types import FileCatalog

    catalog = dict(a.catalog.items())
    for fid, size in b.catalog.items():
        if catalog.get(fid, size) != size:
            raise ConfigError(
                f"file {fid!r} has conflicting sizes in the two traces"
            )
        catalog[fid] = size

    ia, ib = iter(a), iter(b)
    la, lb = list(ia), list(ib)
    out: list[Request] = []
    i = j = 0
    while i < len(la) and j < len(lb):
        if rng.random() < p_first:
            out.append(la[i])
            i += 1
        else:
            out.append(lb[j])
            j += 1
    out.extend(la[i:])
    out.extend(lb[j:])
    out = [
        Request(request_id=0, bundle=r.bundle, priority=r.priority)
        for r in out
    ]
    return Trace(
        FileCatalog(catalog),
        _renumber(out),
        meta={"interleaved": True, "p_first": p_first},
    )


def hybrid_trace(
    trace: Trace,
    rng: np.random.Generator,
    *,
    single_file_fraction: float = 0.5,
) -> Trace:
    """The paper's hybrid execution model (Section 6 future work).

    A fraction of the jobs execute "One File at a Time" (their bundles are
    exploded into per-file jobs); the rest stay "File-Bundle at a Time".
    """
    if not (0.0 <= single_file_fraction <= 1.0):
        raise ConfigError(
            f"single_file_fraction must be in [0, 1], got {single_file_fraction}"
        )
    jobs = list(trace)
    mask = rng.random(len(jobs)) < single_file_fraction
    singles = [r for r, m in zip(jobs, mask) if m]
    bundles = [r for r, m in zip(jobs, mask) if not m]
    single_part = explode_to_single_file_jobs(
        Trace(trace.catalog, _renumber(singles), meta=dict(trace.meta))
    )
    bundle_part = Trace(trace.catalog, _renumber(bundles), meta=dict(trace.meta))
    mixed = interleave(
        bundle_part,
        single_part,
        rng,
        p_first=max(len(bundle_part), 1)
        / max(len(bundle_part) + len(single_part), 1),
    )
    mixed.meta.update(
        {"hybrid": True, "single_file_fraction": single_file_fraction}
    )
    return mixed
