"""Workload/trace analytics: the quantities that predict caching behaviour.

The paper's Section 5.2 discusses the workload knobs (request size,
popularity, sharing degree); this module measures them on any trace —
synthetic or recorded — so users can characterise their own workloads
before choosing parameters:

* bundle-size distribution (files and bytes per request);
* file sharing degrees ``d(f)`` and the Theorem 4.1 ``d``;
* popularity concentration (top-k share, Gini coefficient);
* temporal drift of the hot set (windowed Jaccard similarity).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.utils.stats import Summary, summarize
from repro.workload.trace import Trace

__all__ = [
    "TraceProfile",
    "profile_trace",
    "popularity_concentration",
    "gini",
    "hot_set_drift",
]


@dataclass(frozen=True)
class TraceProfile:
    """Summary statistics of one trace."""

    jobs: int
    distinct_types: int
    n_files: int
    catalog_bytes: int
    bundle_files: Summary
    bundle_bytes: Summary
    max_degree: int
    mean_degree: float
    top1_share: float
    top10_share: float
    gini_popularity: float

    def render(self) -> str:
        return "\n".join(
            [
                f"jobs={self.jobs}  types={self.distinct_types}  "
                f"files={self.n_files}  catalog={self.catalog_bytes}B",
                f"bundle files: mean={self.bundle_files.mean:.2f} "
                f"min={self.bundle_files.min:.0f} max={self.bundle_files.max:.0f}",
                f"bundle bytes: mean={self.bundle_bytes.mean:.0f} "
                f"max={self.bundle_bytes.max:.0f}",
                f"file degree: max={self.max_degree} mean={self.mean_degree:.2f}",
                f"popularity: top1={self.top1_share:.3f} "
                f"top10={self.top10_share:.3f} gini={self.gini_popularity:.3f}",
            ]
        )


def gini(values) -> float:
    """Gini coefficient of a non-negative sample (0 = equal, →1 = skewed)."""
    xs = np.sort(np.asarray(list(values), dtype=np.float64))
    if xs.size == 0:
        raise ConfigError("gini of an empty sample")
    if np.any(xs < 0):
        raise ConfigError("gini requires non-negative values")
    total = xs.sum()
    if total == 0:
        return 0.0
    n = xs.size
    ranks = np.arange(1, n + 1)
    return float((2 * (ranks * xs).sum() / (n * total)) - (n + 1) / n)


def popularity_concentration(trace: Trace, k: int = 10) -> tuple[float, float]:
    """(top-1 share, top-k share) of request-type popularity."""
    if k < 1:
        raise ConfigError(f"k must be >= 1, got {k}")
    counts = Counter(r.bundle for r in trace)
    if not counts:
        raise ConfigError("trace has no jobs")
    total = sum(counts.values())
    ordered = sorted(counts.values(), reverse=True)
    return ordered[0] / total, sum(ordered[:k]) / total


def profile_trace(trace: Trace) -> TraceProfile:
    """Compute the full :class:`TraceProfile` of a trace."""
    if len(trace) == 0:
        raise ConfigError("cannot profile an empty trace")
    sizes = trace.catalog.as_dict()
    types = trace.stream.distinct_bundles()
    degrees: Counter[str] = Counter()
    for b in types:
        degrees.update(b.files)
    top1, top10 = popularity_concentration(trace)
    counts = Counter(r.bundle for r in trace)
    return TraceProfile(
        jobs=len(trace),
        distinct_types=len(types),
        n_files=len(trace.catalog),
        catalog_bytes=trace.catalog.total_bytes(),
        bundle_files=summarize([float(len(r.bundle)) for r in trace]),
        bundle_bytes=summarize(
            [float(r.bundle.size_under(sizes)) for r in trace]
        ),
        max_degree=max(degrees.values(), default=0),
        mean_degree=(
            sum(degrees.values()) / len(degrees) if degrees else 0.0
        ),
        top1_share=top1,
        top10_share=top10,
        gini_popularity=gini(counts.values()),
    )


def hot_set_drift(trace: Trace, *, window: int = 500, top: int = 20) -> list[float]:
    """Jaccard similarity of consecutive windows' top-``top`` request types.

    Values near 1 mean a stable hot set (caching pays off); values near 0
    mean the popular bundles churn between windows.
    """
    if window < 1 or top < 1:
        raise ConfigError("window and top must be >= 1")
    bundles = trace.bundles()
    hot_sets = []
    for start in range(0, len(bundles), window):
        chunk = bundles[start : start + window]
        if len(chunk) < max(2, window // 4):
            break
        counts = Counter(chunk)
        hot_sets.append({b for b, _ in counts.most_common(top)})
    sims = []
    for a, b in zip(hot_sets, hot_sets[1:]):
        union = a | b
        sims.append(len(a & b) / len(union) if union else 1.0)
    return sims
