"""Trace container and JSONL (de)serialization.

A :class:`Trace` bundles the file catalog (sizes) with the job stream so a
workload is fully self-contained and replayable.  The on-disk format is
line-delimited JSON: one header line with metadata and the catalog,
followed by one line per job — appendable, diffable, and streamable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.core.bundle import FileBundle
from repro.core.request import Request, RequestStream
from repro.errors import TraceFormatError
from repro.types import FileCatalog

__all__ = ["Trace"]

_FORMAT_VERSION = 1


class Trace:
    """A replayable workload: file catalog + ordered job stream + metadata."""

    def __init__(
        self,
        catalog: FileCatalog,
        stream: RequestStream,
        meta: dict[str, Any] | None = None,
    ):
        for fid in stream.file_ids():
            if fid not in catalog:
                raise TraceFormatError(f"job references unknown file {fid!r}")
        self.catalog = catalog
        self.stream = stream
        self.meta: dict[str, Any] = dict(meta or {})

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.stream)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.stream)

    def bundles(self) -> list[FileBundle]:
        return self.stream.bundles()

    def total_requested_bytes(self) -> int:
        """Sum over jobs of their bundle size (the byte-miss denominator)."""
        sizes = self.catalog
        return sum(r.bundle.size_under(sizes.as_dict()) for r in self.stream)

    def distinct_request_types(self) -> int:
        return len(self.stream.distinct_bundles())

    # ------------------------------------------------------------------ #
    # serialization

    def dump(self, path: str | Path) -> None:
        """Atomically write the trace as JSONL (temp file + rename)."""
        # imported lazily: repro.durability pulls in the simulator, which
        # imports this module
        from repro.durability.atomicio import atomic_write_text

        try:
            atomic_write_text(
                Path(path), "".join(line + "\n" for line in self.dump_lines())
            )
        except OSError as exc:
            raise TraceFormatError(f"{path}: unwritable trace: {exc}") from None

    def dump_lines(self) -> Iterable[str]:
        header = {
            "type": "header",
            "version": _FORMAT_VERSION,
            "meta": self.meta,
            "files": {fid: size for fid, size in self.catalog.items()},
        }
        yield json.dumps(header, sort_keys=True)
        # keys listed in sorted order so insertion order == canonical
        # order and per-line sort_keys work is skipped (dump is on the
        # durable runner's setup path)
        for req in self.stream:
            yield json.dumps(
                {
                    "files": sorted(req.bundle.files),
                    "id": req.request_id,
                    "priority": req.priority,
                    "t": req.arrival_time,
                    "type": "job",
                }
            )

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        """Read a trace written by :meth:`dump`."""
        path = Path(path)
        try:
            with path.open("r", encoding="utf-8") as fh:
                return cls.load_lines(fh)
        except OSError as exc:
            raise TraceFormatError(f"{path}: unreadable trace: {exc}") from None

    @classmethod
    def load_lines(cls, lines: Iterable[str]) -> "Trace":
        it = iter(lines)
        try:
            first = next(it)
        except StopIteration:
            raise TraceFormatError("empty trace") from None
        header = _parse_json(first)
        if header.get("type") != "header":
            raise TraceFormatError("first line must be the header record")
        if header.get("version") != _FORMAT_VERSION:
            raise TraceFormatError(
                f"unsupported trace version {header.get('version')!r}"
            )
        files = header.get("files")
        if not isinstance(files, dict):
            raise TraceFormatError("header has no file catalog")
        catalog = FileCatalog({str(k): int(v) for k, v in files.items()})

        stream = RequestStream()
        for line in it:
            if not line.strip():
                continue
            rec = _parse_json(line)
            if rec.get("type") != "job":
                raise TraceFormatError(f"unexpected record type {rec.get('type')!r}")
            try:
                stream.append(
                    Request(
                        request_id=int(rec["id"]),
                        bundle=FileBundle(rec["files"]),
                        arrival_time=float(rec.get("t", 0.0)),
                        priority=float(rec.get("priority", 1.0)),
                    )
                )
            except (KeyError, ValueError, TypeError) as exc:
                raise TraceFormatError(f"bad job record {rec!r}: {exc}") from exc
        return cls(catalog, stream, meta=dict(header.get("meta") or {}))


def _parse_json(line: str) -> dict[str, Any]:
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"invalid JSON line: {exc}") from exc
    if not isinstance(obj, dict):
        raise TraceFormatError("each trace line must be a JSON object")
    return obj
