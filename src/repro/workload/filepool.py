"""File-population generation (Section 5.1).

The paper generates file sizes "randomly between a minimum size of 1MB and
a maximum size expressed as a percentage of defined cache size that varied
from 1% to 10%".  :class:`FileSizeSpec` supports that uniform model plus
log-normal, (bounded) Pareto and fixed-size alternatives used by the
extension studies — heavy-tailed sizes are common in real archives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.types import MB, FileCatalog, FileInfo, SizeBytes

__all__ = ["FileSizeSpec", "generate_catalog", "file_id"]

_DISTRIBUTIONS = ("uniform", "lognormal", "pareto", "fixed")


def file_id(index: int) -> str:
    """Canonical file id for the ``index``-th generated file."""
    return f"f{index:06d}"


@dataclass(frozen=True)
class FileSizeSpec:
    """How to draw file sizes.

    Attributes
    ----------
    distribution:
        One of ``uniform`` (paper default), ``lognormal``, ``pareto``,
        ``fixed``.
    min_size / max_size:
        Bounds in bytes.  All draws are clipped into ``[min_size,
        max_size]``; for ``fixed`` every file is exactly ``min_size``.
    sigma:
        Log-normal shape (log-space standard deviation).
    pareto_shape:
        Pareto tail index; smaller = heavier tail.
    """

    distribution: str = "uniform"
    min_size: SizeBytes = MB
    max_size: SizeBytes = 100 * MB
    sigma: float = 1.0
    pareto_shape: float = 1.5

    def __post_init__(self) -> None:
        if self.distribution not in _DISTRIBUTIONS:
            raise ConfigError(
                f"unknown size distribution {self.distribution!r}; "
                f"known: {', '.join(_DISTRIBUTIONS)}"
            )
        if self.min_size <= 0:
            raise ConfigError(f"min_size must be positive, got {self.min_size}")
        if self.max_size < self.min_size:
            raise ConfigError(
                f"max_size ({self.max_size}) must be >= min_size ({self.min_size})"
            )
        if self.sigma <= 0:
            raise ConfigError(f"sigma must be positive, got {self.sigma}")
        if self.pareto_shape <= 0:
            raise ConfigError(f"pareto_shape must be positive, got {self.pareto_shape}")

    def draw(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` integer sizes in ``[min_size, max_size]``."""
        if n < 0:
            raise ConfigError(f"n must be non-negative, got {n}")
        lo, hi = float(self.min_size), float(self.max_size)
        if self.distribution == "fixed":
            sizes = np.full(n, lo)
        elif self.distribution == "uniform":
            sizes = rng.uniform(lo, hi, size=n)
        elif self.distribution == "lognormal":
            # median at the geometric middle of the range
            mu = 0.5 * (np.log(lo) + np.log(hi))
            sizes = rng.lognormal(mean=mu, sigma=self.sigma, size=n)
        else:  # pareto
            sizes = lo * (1.0 + rng.pareto(self.pareto_shape, size=n))
        return np.clip(np.round(sizes), lo, hi).astype(np.int64)

    @staticmethod
    def paper(cache_size: SizeBytes, max_fraction: float) -> "FileSizeSpec":
        """The paper's model: uniform in [1MB, max_fraction * cache_size].

        ``max_fraction`` is the "1% to 10% of cache size" knob of Figures
        6–7.  If the fraction puts the maximum below 1MB the range collapses
        to the 1MB minimum.
        """
        if not (0.0 < max_fraction <= 1.0):
            raise ConfigError(
                f"max_fraction must be in (0, 1], got {max_fraction}"
            )
        max_size = max(int(cache_size * max_fraction), MB)
        return FileSizeSpec(distribution="uniform", min_size=MB, max_size=max_size)


def generate_catalog(
    n_files: int,
    spec: FileSizeSpec,
    rng: np.random.Generator,
) -> FileCatalog:
    """Generate ``n_files`` files with sizes drawn from ``spec``."""
    if n_files <= 0:
        raise ConfigError(f"n_files must be positive, got {n_files}")
    sizes = spec.draw(rng, n_files)
    return FileCatalog(
        FileInfo(file_id(i), int(sizes[i])) for i in range(n_files)
    )
