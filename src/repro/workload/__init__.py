"""Synthetic workload generation (Section 5.1–5.2 of the paper).

No public file-bundle traces exist (the paper itself notes this), so
workloads are generated synthetically with the paper's stated parameters:

* a pool of files with sizes drawn between 1 MB and a percentage of the
  cache size (:mod:`repro.workload.filepool`);
* a pool of request types, each a random set of files whose total size is
  below the cache size (:mod:`repro.workload.requestpool`);
* a job stream drawing request types under uniform or Zipf popularity
  (:mod:`repro.workload.distributions`, :mod:`repro.workload.generator`);
* domain-flavoured generators for the paper's three motivating
  applications (:mod:`repro.workload.scenarios`);
* trace (de)serialization (:mod:`repro.workload.trace`).
"""

from repro.workload.distributions import (
    PopularitySampler,
    UniformSampler,
    ZipfSampler,
    make_sampler,
    zipf_weights,
)
from repro.workload.filepool import FileSizeSpec, generate_catalog
from repro.workload.requestpool import generate_request_pool
from repro.workload.trace import Trace
from repro.workload.generator import (
    WorkloadSpec,
    generate_trace,
    average_request_size,
    cache_size_in_requests,
)
from repro.workload.transforms import (
    concatenate,
    explode_to_single_file_jobs,
    filter_trace,
    hybrid_trace,
    interleave,
    truncate,
)
from repro.workload.analytics import (
    TraceProfile,
    gini,
    hot_set_drift,
    popularity_concentration,
    profile_trace,
)
from repro.workload.scenarios import (
    henp_trace,
    climate_trace,
    bitmap_index_trace,
)

__all__ = [
    "PopularitySampler",
    "UniformSampler",
    "ZipfSampler",
    "make_sampler",
    "zipf_weights",
    "FileSizeSpec",
    "generate_catalog",
    "generate_request_pool",
    "Trace",
    "WorkloadSpec",
    "generate_trace",
    "average_request_size",
    "cache_size_in_requests",
    "concatenate",
    "explode_to_single_file_jobs",
    "filter_trace",
    "hybrid_trace",
    "interleave",
    "truncate",
    "TraceProfile",
    "gini",
    "hot_set_drift",
    "popularity_concentration",
    "profile_trace",
    "henp_trace",
    "climate_trace",
    "bitmap_index_trace",
]
